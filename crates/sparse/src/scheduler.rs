//! Continuous-batching scheduler: requests join, decode, cancel and retire
//! **while the engine is running**.
//!
//! The closed [`Batch`](crate::batch::Batch) model — push everything, then
//! run — is fine for offline evaluation but is the wrong shape for serving:
//! real traffic churns. This module is the serving loop proper:
//!
//! * [`Scheduler::submit`] accepts a request **at any time**, including
//!   mid-run, and returns a [`RequestHandle`] that can cancel it (queued or
//!   mid-stream).
//! * Each [`tick`](Scheduler::tick) first **admits** queued requests — in
//!   strict FIFO order, up to [`max_slots`](SchedulerConfig::max_slots)
//!   concurrent decodes and within the KV block budget — then advances
//!   every live slot by one model step.
//! * Admission is **capacity-based**: a request is admitted only when its
//!   worst-case KV footprint (`prompt + max_new` tokens across every
//!   layer) fits in the unreserved remainder of the pool budget, so the
//!   pool can never be exhausted mid-decode and nothing ever needs to be
//!   preempted. Actual allocation stays **lazy** — a request that stops
//!   after three tokens only ever allocated blocks for three tokens — so
//!   the reservation is an upper bound the blocks of finished requests
//!   immediately flow back out of.
//! * The moment a request finishes (budget, stop token, cancellation or
//!   failure) its slot **retires**: engine scratch, workspace and the
//!   session's KV blocks are released and the freed capacity admits the
//!   next queued request on the very next tick.
//!
//! # Determinism contract
//!
//! Admission is FIFO (head-of-line blocking included: when the oldest
//! queued request does not fit, nothing younger jumps it), slots advance in
//! admission order, and events are delivered in slot order — so a fixed
//! submission sequence yields a fixed admission schedule, a fixed event
//! stream, and **bit-identical tokens per request to running that request
//! alone**, at any slot-thread count ([`parallel`](Scheduler::parallel))
//! and any kernel-thread count. Interleaving is pure scheduling; it never
//! touches the math.
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer_sparse::engine::EngineBuilder;
//! use sparseinfer_sparse::request::GenerateRequest;
//! use sparseinfer_sparse::scheduler::{Scheduler, SchedulerConfig};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 3).build();
//! let mut scheduler = Scheduler::new(SchedulerConfig {
//!     max_slots: 2,                  // at most two concurrent decodes
//!     block_tokens: 8,               // KV page granularity
//!     kv_block_budget: usize::MAX,   // no memory cap in this example
//! });
//! let first = scheduler
//!     .submit(
//!         EngineBuilder::new(&model).build().unwrap(),
//!         &GenerateRequest::new(&[1, 2]).max_new(4),
//!     )
//!     .unwrap();
//! scheduler.tick(|_| {}); // decoding has started…
//! let late = scheduler
//!     .submit(
//!         EngineBuilder::new(&model).build().unwrap(),
//!         &GenerateRequest::new(&[3]).max_new(3),
//!     )
//!     .unwrap(); // …and this request joins mid-run on the next tick.
//! let outputs = scheduler.run();
//! assert_eq!(outputs.len(), 2);
//! assert_eq!(outputs[0].id, first.id());
//! assert_eq!(outputs[1].id, late.id());
//! assert_eq!(outputs[1].tokens.len(), 3);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sparseinfer_model::kv::{KvBlockPool, DEFAULT_BLOCK_TOKENS};
use sparseinfer_tensor::{ParallelOptions, ThreadPool};

use crate::engine::{Engine, MemoryEstimate, SparsityStats};
use crate::error::EngineError;
use crate::ops::OpCounter;
use crate::request::{FinishReason, GenerateRequest, RequestRun, TokenEvent};

/// A token emitted by one request inside a scheduler or batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEvent {
    /// The request id returned by [`Scheduler::submit`] /
    /// [`Batch::push`](crate::batch::Batch::push).
    pub request: usize,
    /// Zero-based position in that request's continuation.
    pub index: usize,
    /// The token id.
    pub token: u32,
}

/// The finished result of one scheduled request, with per-request
/// accounting.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// The request id returned by [`Scheduler::submit`] /
    /// [`Batch::push`](crate::batch::Batch::push).
    pub id: usize,
    /// The generated tokens.
    pub tokens: Vec<u32>,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// Operations this request executed (prefill through the bare model is
    /// not counted, matching the single-request path).
    pub ops: OpCounter,
    /// Sparsity statistics, for sparse engines.
    pub stats: Option<SparsityStats>,
    /// The engine configuration name that served the request.
    pub engine: String,
}

/// Admission-control knobs of a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum concurrently decoding requests. Queued requests past this
    /// wait for a slot to retire.
    pub max_slots: usize,
    /// Tokens per KV block — the paging granularity. Smaller blocks waste
    /// less on short answers; larger blocks take the pool lock less often.
    pub block_tokens: usize,
    /// Total KV blocks the scheduler's pool may ever hold (across all
    /// layers of all live requests). Admission reserves each request's
    /// worst case against this, so decode can never run out mid-flight.
    /// `usize::MAX` disables the memory gate.
    pub kv_block_budget: usize,
}

impl Default for SchedulerConfig {
    /// Eight slots, default block size, no KV budget.
    fn default() -> Self {
        Self {
            max_slots: 8,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            kv_block_budget: usize::MAX,
        }
    }
}

impl SchedulerConfig {
    /// No admission limits at all: every submitted request is admitted on
    /// the next tick — the configuration the closed
    /// [`Batch`](crate::batch::Batch) wrapper runs on.
    pub fn unbounded() -> Self {
        Self {
            max_slots: usize::MAX,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            kv_block_budget: usize::MAX,
        }
    }
}

/// A cancellation handle for one submitted request.
///
/// Cloneable and thread-safe; [`cancel`](Self::cancel) takes effect at the
/// start of the next tick, whether the request is still queued or already
/// decoding. The request still appears in the outputs, finished with
/// [`FinishReason::Cancelled`] and whatever tokens it had produced.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    id: usize,
    cancel: Arc<AtomicBool>,
}

impl RequestHandle {
    /// The request id (also [`BatchOutput::id`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// A request waiting for admission.
struct QueuedRequest<'m> {
    id: usize,
    engine: Box<dyn Engine + 'm>,
    req: GenerateRequest,
    cancel: Arc<AtomicBool>,
    /// Worst-case KV blocks (`prompt + max_new` tokens × layers) reserved
    /// at admission.
    worst_blocks: usize,
}

/// A request occupying a decode slot.
struct LiveSlot<'m> {
    id: usize,
    engine: Box<dyn Engine + 'm>,
    run: RequestRun,
    cancel: Arc<AtomicBool>,
    worst_blocks: usize,
    /// Event produced by the most recent tick (drained in slot order so
    /// streaming callbacks see a deterministic sequence even when slots
    /// advance on worker threads).
    last_event: Option<TokenEvent>,
}

impl<'m> LiveSlot<'m> {
    /// Consumes a finished slot into its output, dropping the engine's
    /// per-session scratch and returning the session's KV blocks to the
    /// pool.
    fn into_output(self) -> BatchOutput {
        let generation = self.run.into_generation();
        BatchOutput {
            id: self.id,
            tokens: generation.tokens,
            finish: generation.finish,
            ops: *self.engine.ops(),
            stats: self.engine.stats().cloned(),
            engine: self.engine.name().to_string(),
        }
    }
}

/// The output of a request that never occupied a decode slot (cancelled in
/// the queue, or — defensively — failed at admission): no tokens, counters
/// as the engine left them.
fn unstarted_output(q: QueuedRequest<'_>, finish: FinishReason) -> BatchOutput {
    BatchOutput {
        id: q.id,
        tokens: Vec::new(),
        finish,
        ops: *q.engine.ops(),
        stats: q.engine.stats().cloned(),
        engine: q.engine.name().to_string(),
    }
}

/// A continuous-batching scheduler over a paged KV cache.
///
/// See the [module docs](self) for the serving model and the determinism
/// contract. Constructed via [`new`](Scheduler::new) (plus
/// [`parallel`](Scheduler::parallel) for slot-level thread parallelism);
/// driven either tick by tick ([`tick`](Scheduler::tick) +
/// [`take_finished`](Scheduler::take_finished), the open-ended serving
/// loop) or to completion ([`run`](Scheduler::run) /
/// [`run_streaming`](Scheduler::run_streaming)).
pub struct Scheduler<'m> {
    config: SchedulerConfig,
    pool: ThreadPool,
    kv: KvBlockPool,
    queue: VecDeque<QueuedRequest<'m>>,
    slots: Vec<LiveSlot<'m>>,
    finished: Vec<BatchOutput>,
    next_id: usize,
    /// Worst-case blocks reserved by the live slots.
    reserved_blocks: usize,
    /// KV dimension established by the first submission: every session
    /// pages out of one fixed-block-size pool, so later submissions must
    /// match (validated in [`submit`](Self::submit)).
    kv_dim: Option<usize>,
}

impl std::fmt::Debug for Scheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("queued", &self.queue.len())
            .field("active", &self.slots.len())
            .field("finished", &self.finished.len())
            .field("reserved_blocks", &self.reserved_blocks)
            .finish()
    }
}

impl<'m> Scheduler<'m> {
    /// An empty scheduler with the given admission-control configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_slots`, `config.block_tokens` or
    /// `config.kv_block_budget` is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.max_slots > 0, "max_slots must be positive");
        Self {
            kv: KvBlockPool::with_budget(config.block_tokens, config.kv_block_budget),
            config,
            pool: ThreadPool::single(),
            queue: VecDeque::new(),
            slots: Vec::new(),
            finished: Vec::new(),
            next_id: 0,
            reserved_blocks: 0,
            kv_dim: None,
        }
    }

    /// Sets slot-level parallelism: each tick advances up to
    /// `parallel.threads` live slots concurrently. Token streams and event
    /// order are bit-identical to the sequential schedule.
    pub fn parallel(mut self, parallel: ParallelOptions) -> Self {
        self.pool = ThreadPool::new(parallel);
        self
    }

    /// Uses an existing worker pool for slot-level parallelism (the
    /// scheduler analogue of
    /// [`EngineBuilder::pool`](crate::engine::EngineBuilder::pool)).
    pub fn slot_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The admission-control configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The scheduler's KV block pool — exposed for capacity monitoring
    /// (`blocks_in_use`, `memory_bytes`) and tests.
    pub fn kv_pool(&self) -> &KvBlockPool {
        &self.kv
    }

    /// Worst-case KV blocks `req` can ever need on `engine`'s model: one
    /// cache per layer, each holding up to `prompt + max_new` tokens.
    fn worst_case_blocks(&self, engine: &dyn Engine, req: &GenerateRequest) -> usize {
        let worst_tokens = req.prompt.len() + req.max_new;
        engine.model().layers().len() * self.kv.blocks_for_tokens(worst_tokens)
    }

    /// Submits a request, at any time — before the first tick or while
    /// other requests are mid-decode. The request waits in a FIFO
    /// admission queue until a slot and enough unreserved KV budget are
    /// available. The engine's counters are reset so the eventual
    /// [`BatchOutput::ops`] is exactly this request's work.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the prompt is empty;
    /// [`EngineError::KvBudgetExceeded`] if the request's worst-case KV
    /// footprint exceeds the *total* budget (it could never be admitted);
    /// [`EngineError::KvDimensionMismatch`] if the engine's model uses a
    /// different KV dimension than this scheduler's earlier submissions —
    /// every session pages out of one shared pool of fixed-size blocks,
    /// so one scheduler serves models of one KV width (mixed *engine
    /// kinds* over one model remain fully supported).
    pub fn submit(
        &mut self,
        mut engine: Box<dyn Engine + 'm>,
        req: &GenerateRequest,
    ) -> Result<RequestHandle, EngineError> {
        if req.prompt.is_empty() {
            return Err(EngineError::EmptyPrompt);
        }
        let model_dim = engine.model().config().hidden_dim;
        if let Some(dim) = self.kv_dim {
            if dim != model_dim {
                return Err(EngineError::KvDimensionMismatch {
                    scheduler_dim: dim,
                    model_dim,
                });
            }
        }
        let worst_blocks = self.worst_case_blocks(engine.as_ref(), req);
        if worst_blocks > self.config.kv_block_budget {
            return Err(EngineError::KvBudgetExceeded {
                required_blocks: worst_blocks,
                budget_blocks: self.config.kv_block_budget,
            });
        }
        // Latch the pool's dimension only once the request is accepted — a
        // rejected submit must not pin the scheduler to its model.
        self.kv_dim = Some(model_dim);
        engine.reset_ops();
        let id = self.next_id;
        self.next_id += 1;
        let cancel = Arc::new(AtomicBool::new(false));
        self.queue.push_back(QueuedRequest {
            id,
            engine,
            req: req.clone(),
            cancel: Arc::clone(&cancel),
            worst_blocks,
        });
        Ok(RequestHandle { id, cancel })
    }

    /// Admits queued requests in FIFO order while a slot is free and the
    /// head of the queue fits in the unreserved KV budget. Head-of-line
    /// blocking is deliberate: skipping ahead would make the admission
    /// schedule depend on sizes, not order, breaking both fairness and the
    /// determinism contract.
    fn admit(&mut self) {
        // Cancelled-while-queued requests retire immediately, wherever
        // they sit in the queue: cancellation's point is to release the
        // engine's memory now, and it must not wait behind a blocked
        // queue head. (Dropping entries never reorders the survivors, so
        // FIFO determinism is untouched.)
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].cancel.load(Ordering::Relaxed) {
                let q = self.queue.remove(i).expect("index in bounds");
                self.finished
                    .push(unstarted_output(q, FinishReason::Cancelled));
            } else {
                i += 1;
            }
        }
        loop {
            let Some(front) = self.queue.front() else {
                return;
            };
            if self.slots.len() >= self.config.max_slots
                || self.reserved_blocks + front.worst_blocks > self.config.kv_block_budget
            {
                return;
            }
            let q = self.queue.pop_front().expect("front exists");
            match RequestRun::with_kv_pool(&q.req, q.engine.as_ref(), &self.kv) {
                Ok(run) => {
                    self.reserved_blocks += q.worst_blocks;
                    self.slots.push(LiveSlot {
                        id: q.id,
                        engine: q.engine,
                        run,
                        cancel: q.cancel,
                        worst_blocks: q.worst_blocks,
                        last_event: None,
                    });
                }
                // Unreachable today (submit validates the prompt), kept as
                // data so a future validation gap degrades to a failed
                // request instead of a poisoned serving loop.
                Err(err) => self
                    .finished
                    .push(unstarted_output(q, FinishReason::Failed(err))),
            }
        }
    }

    /// One scheduling round: admit what fits, apply pending cancellations,
    /// advance every live slot by one model step — concurrently when built
    /// with [`parallel`](Self::parallel) — deliver this round's tokens to
    /// `on_token` in slot order, and retire finished slots (releasing
    /// their KV blocks and engine scratch immediately). Returns the number
    /// of unfinished requests (queued + live) remaining.
    ///
    /// A slot whose engine fails mid-decode finishes with
    /// [`FinishReason::Failed`] and retires like any other; the scheduler
    /// keeps serving its remaining requests.
    pub fn tick(&mut self, mut on_token: impl FnMut(BatchEvent)) -> usize {
        self.admit();
        for slot in &mut self.slots {
            if slot.cancel.load(Ordering::Relaxed) {
                slot.run.cancel();
            }
        }
        self.pool.run_tasks(&mut self.slots, |_, slot| {
            slot.last_event = if slot.run.finished() {
                None
            } else {
                // An Err has already marked the run finished with a
                // Failed reason; retirement below records it.
                slot.run.advance(slot.engine.as_mut()).unwrap_or(None)
            };
        });
        for slot in &mut self.slots {
            if let Some(TokenEvent { index, token }) = slot.last_event.take() {
                on_token(BatchEvent {
                    request: slot.id,
                    index,
                    token,
                });
            }
        }
        // Retire in slot order; `Vec::remove` keeps admission order for
        // the survivors (max_slots is small, the O(n) shift is noise).
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].run.finished() {
                let slot = self.slots.remove(i);
                self.reserved_blocks -= slot.worst_blocks;
                self.finished.push(slot.into_output());
            } else {
                i += 1;
            }
        }
        self.unfinished_requests()
    }

    /// Requests submitted over the scheduler's lifetime.
    pub fn submitted(&self) -> usize {
        self.next_id
    }

    /// Requests not yet finished (queued plus live).
    pub fn unfinished_requests(&self) -> usize {
        self.queue.len() + self.slots.len()
    }

    /// Requests waiting for admission.
    pub fn pending_requests(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently occupying decode slots.
    pub fn active_slots(&self) -> usize {
        self.slots.len()
    }

    /// Worst-case KV blocks currently reserved by the live slots.
    pub fn reserved_blocks(&self) -> usize {
        self.reserved_blocks
    }

    /// Drains the outputs of every request finished so far, in finish
    /// order — the incremental collection point for open-ended serving
    /// loops that never drain the scheduler completely.
    pub fn take_finished(&mut self) -> Vec<BatchOutput> {
        std::mem::take(&mut self.finished)
    }

    /// Memory of the scheduler's execution state: engine memory over every
    /// queued and live request (shared predictor bytes counted **once per
    /// distinct predictor**, deduplicated by `Arc` identity) plus the KV
    /// blocks live sessions currently hold. Retired requests contribute
    /// nothing — their scratch is dropped and their blocks are back in the
    /// pool — which is the measurable form of the O(live tokens) memory
    /// property.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut seen = Vec::new();
        let mut total = MemoryEstimate::default();
        let engines = self
            .slots
            .iter()
            .map(|s| s.engine.as_ref())
            .chain(self.queue.iter().map(|q| q.engine.as_ref()));
        for engine in engines {
            let est = engine.memory_estimate();
            total.per_session_bytes += est.per_session_bytes;
            match engine.shared_state_id() {
                Some(id) if seen.contains(&id) => {}
                Some(id) => {
                    seen.push(id);
                    total.shared_bytes += est.shared_bytes;
                }
                None => total.shared_bytes += est.shared_bytes,
            }
        }
        total.per_session_bytes += self.kv.in_use_bytes();
        total
    }

    /// Runs every remaining request to completion and returns the
    /// outputs, in submission order, of every request not already drained
    /// through [`take_finished`](Self::take_finished) — on a scheduler
    /// that never called it, that is every request ever submitted (and
    /// `outputs[handle.id()]` indexing is valid).
    pub fn run(self) -> Vec<BatchOutput> {
        self.run_streaming(|_| {})
    }

    /// Runs every remaining request to completion, streaming each token
    /// through `on_token` as it is produced, interleaved across requests.
    /// Returns the outputs of every request not already drained through
    /// [`take_finished`](Self::take_finished), in submission order.
    pub fn run_streaming(mut self, mut on_token: impl FnMut(BatchEvent)) -> Vec<BatchOutput> {
        while self.tick(&mut on_token) > 0 {}
        let mut outputs = self.finished;
        outputs.sort_by_key(|o| o.id);
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use crate::request::{generate, GenerateRequest};
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::{Model, ModelConfig};
    use sparseinfer_predictor::AlphaSchedule;

    fn model() -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), 23).build()
    }

    fn dense<'m>(m: &'m Model) -> Box<dyn Engine + 'm> {
        EngineBuilder::new(m).build().unwrap()
    }

    fn solo_tokens(m: &Model, req: &GenerateRequest) -> Vec<u32> {
        let mut e = dense(m);
        generate(e.as_mut(), req).unwrap().tokens
    }

    #[test]
    fn empty_scheduler_runs_to_nothing() {
        let s = Scheduler::new(SchedulerConfig::default());
        assert_eq!(s.unfinished_requests(), 0);
        assert!(s.run().is_empty());
    }

    #[test]
    fn submit_rejects_empty_prompts() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        let err = s.submit(dense(&m), &GenerateRequest::new(&[])).unwrap_err();
        assert_eq!(err, EngineError::EmptyPrompt);
        assert_eq!(s.submitted(), 0);
    }

    #[test]
    fn submit_rejects_requests_that_can_never_fit() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 4,
            block_tokens: 4,
            kv_block_budget: 3,
        });
        // tiny() has 2 layers: 2 · ceil((2 + 30)/4) = 16 blocks > 3.
        let err = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(30))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::KvBudgetExceeded {
                required_blocks: 16,
                budget_blocks: 3
            }
        );
    }

    #[test]
    fn max_slots_caps_concurrency_and_everything_still_finishes() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(4);
        let expected = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            ..SchedulerConfig::default()
        });
        for _ in 0..5 {
            s.submit(dense(&m), &req).unwrap();
        }
        let mut peak = 0;
        while s.tick(|_| {}) > 0 {
            peak = peak.max(s.active_slots());
        }
        assert_eq!(peak, 2, "admission must fill, but never exceed, the slots");
        let outputs = s.take_finished();
        assert_eq!(outputs.len(), 5);
        for o in &outputs {
            assert_eq!(o.tokens, expected);
            assert_eq!(o.finish, FinishReason::MaxTokens);
        }
    }

    #[test]
    fn kv_budget_serializes_admission_without_starving_anyone() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(4);
        // Worst case per request: 2 layers · ceil(6/4) = 4 blocks; a
        // budget of 5 fits exactly one at a time.
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 4,
            block_tokens: 4,
            kv_block_budget: 5,
        });
        for _ in 0..3 {
            s.submit(dense(&m), &req).unwrap();
        }
        let mut peak = 0;
        while s.tick(|_| {}) > 0 {
            peak = peak.max(s.active_slots());
            assert!(s.reserved_blocks() <= 5, "reservation within budget");
            assert!(s.kv_pool().blocks_in_use() <= 5, "usage within budget");
        }
        assert_eq!(peak, 1, "budget admits one request at a time");
        let outputs = s.take_finished();
        assert_eq!(outputs.len(), 3, "head-of-line blocking is not starvation");
        let expected = solo_tokens(&m, &req);
        assert!(outputs.iter().all(|o| o.tokens == expected));
    }

    #[test]
    fn requests_join_mid_run_and_decode_identically() {
        let m = model();
        let req_a = GenerateRequest::new(&[1, 2, 3]).max_new(6);
        let req_b = GenerateRequest::new(&[7, 8]).max_new(4);
        let solo_a = solo_tokens(&m, &req_a);
        let solo_b = solo_tokens(&m, &req_b);

        let mut s = Scheduler::new(SchedulerConfig::default());
        let a = s.submit(dense(&m), &req_a).unwrap();
        for _ in 0..3 {
            s.tick(|_| {});
        }
        // Joins while `a` is mid-decode.
        let b = s.submit(dense(&m), &req_b).unwrap();
        let outputs = s.run();
        assert_eq!(outputs[a.id()].tokens, solo_a);
        assert_eq!(outputs[b.id()].tokens, solo_b);
    }

    #[test]
    fn cancelling_a_queued_request_retires_it_without_decoding() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            ..SchedulerConfig::default()
        });
        let keep = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(3))
            .unwrap();
        let doomed = s
            .submit(dense(&m), &GenerateRequest::new(&[4]).max_new(3))
            .unwrap();
        doomed.cancel();
        assert!(doomed.is_cancelled());
        let outputs = s.run();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[keep.id()].finish, FinishReason::MaxTokens);
        assert_eq!(outputs[doomed.id()].finish, FinishReason::Cancelled);
        assert!(outputs[doomed.id()].tokens.is_empty());
    }

    #[test]
    fn cancelling_mid_stream_keeps_the_tokens_so_far_and_frees_blocks() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(32);
        let solo = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: usize::MAX,
        });
        let handle = s.submit(dense(&m), &req).unwrap();
        let kv = s.kv_pool().clone();
        let mut streamed = Vec::new();
        for _ in 0..6 {
            s.tick(|ev| streamed.push(ev.token));
        }
        handle.cancel();
        let outputs = s.run();
        assert_eq!(outputs[0].finish, FinishReason::Cancelled);
        assert!(!outputs[0].tokens.is_empty(), "partial output preserved");
        assert!(
            outputs[0].tokens.len() < 32,
            "cancelled well short of budget"
        );
        assert_eq!(outputs[0].tokens, streamed);
        assert_eq!(
            outputs[0].tokens[..],
            solo[..outputs[0].tokens.len()],
            "the prefix matches solo decode exactly"
        );
        assert_eq!(kv.blocks_in_use(), 0, "blocks reclaimed");
    }

    #[test]
    fn retirement_frees_capacity_that_admits_the_next_request() {
        let m = model();
        let short = GenerateRequest::new(&[1, 2]).max_new(2);
        let long = GenerateRequest::new(&[3, 4]).max_new(8);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            ..SchedulerConfig::default()
        });
        s.submit(dense(&m), &short).unwrap();
        s.submit(dense(&m), &long).unwrap();
        // Tick until the short request retires; the long one must then be
        // admitted into the freed slot.
        let mut ticks = 0;
        while s.pending_requests() > 0 {
            s.tick(|_| {});
            ticks += 1;
            assert!(ticks < 64, "the queued request must eventually be admitted");
        }
        let outputs = s.run();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[1].tokens, solo_tokens(&m, &long));
    }

    #[test]
    fn mixed_engine_kinds_share_one_scheduler() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(4);
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(dense(&m), &req).unwrap();
        s.submit(
            EngineBuilder::new(&m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap(),
            &req,
        )
        .unwrap();
        let out = s.run();
        assert_eq!(out[0].engine, "dense");
        assert_eq!(out[1].engine, "sparse:sparseinfer");
        assert!(out[0].stats.is_none());
        assert!(out[1].stats.is_some());
    }

    #[test]
    fn mixed_kv_dimensions_are_rejected_at_submit_not_mid_decode() {
        let m_small = model(); // tiny(): one hidden_dim…
        let mut cfg = ModelConfig::tiny();
        cfg.hidden_dim *= 2; // …and a model with another
        cfg.n_heads = 2;
        let m_big = WeightGenerator::new(&cfg, 5).build();
        let m_twin = WeightGenerator::new(&ModelConfig::tiny(), 77).build();

        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(dense(&m_small), &GenerateRequest::new(&[1]).max_new(2))
            .unwrap();
        let err = s
            .submit(dense(&m_big), &GenerateRequest::new(&[2]).max_new(2))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::KvDimensionMismatch {
                scheduler_dim: m_small.config().hidden_dim,
                model_dim: m_big.config().hidden_dim,
            },
            "a mismatched model must be rejected as data, not a pool panic"
        );
        // The scheduler keeps serving, and distinct models of the *same*
        // KV dimension still mix freely (the pre-scheduler Batch contract).
        s.submit(dense(&m_twin), &GenerateRequest::new(&[3]).max_new(2))
            .unwrap();
        let outputs = s.run();
        assert_eq!(outputs.len(), 2);
        assert!(outputs.iter().all(|o| o.tokens.len() == 2));
    }

    #[test]
    fn rejected_submit_does_not_latch_the_kv_dimension() {
        let m_small = model();
        let mut cfg = ModelConfig::tiny();
        cfg.hidden_dim *= 2;
        cfg.n_heads = 2;
        let m_big = WeightGenerator::new(&cfg, 9).build();

        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: 3,
        });
        // Budget-rejected: must not pin the scheduler to m_big's width.
        let err = s
            .submit(dense(&m_big), &GenerateRequest::new(&[1, 2]).max_new(30))
            .unwrap_err();
        assert!(matches!(err, EngineError::KvBudgetExceeded { .. }));
        // A fitting request over a *different* dimension is still welcome.
        s.submit(dense(&m_small), &GenerateRequest::new(&[1]).max_new(2))
            .unwrap();
        assert_eq!(s.run().len(), 1);
    }

    #[test]
    fn cancelled_requests_behind_a_blocked_head_retire_immediately() {
        let m = model();
        // Budget fits exactly one small request; the big head can never be
        // joined by anything while it waits… but cancellation must not
        // wait with it.
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 3,
            block_tokens: 4,
            kv_block_budget: 4,
        });
        let head = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(4))
            .unwrap();
        let mut doomed = Vec::new();
        for t in 0..3 {
            doomed.push(
                s.submit(dense(&m), &GenerateRequest::new(&[3 + t]).max_new(4))
                    .unwrap(),
            );
        }
        s.tick(|_| {}); // head admitted, the rest queue behind it
        assert_eq!(s.active_slots(), 1);
        assert_eq!(s.pending_requests(), 3);
        for h in &doomed {
            h.cancel();
        }
        s.tick(|_| {});
        assert_eq!(
            s.pending_requests(),
            0,
            "cancelled entries must leave the queue (and drop their \
             engines) even though the head is still decoding"
        );
        let _ = head;
        let outputs = s.run();
        assert_eq!(outputs.len(), 4);
        assert!(outputs[1..]
            .iter()
            .all(|o| o.finish == FinishReason::Cancelled));
        assert_eq!(outputs[0].tokens.len(), 4);
    }

    #[test]
    fn take_finished_drains_incrementally() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(dense(&m), &GenerateRequest::new(&[1]).max_new(1))
            .unwrap();
        s.submit(dense(&m), &GenerateRequest::new(&[2, 3]).max_new(6))
            .unwrap();
        while s.take_finished().is_empty() {
            s.tick(|_| {});
        }
        assert!(s.unfinished_requests() > 0, "long request still going");
        while s.tick(|_| {}) > 0 {}
        assert_eq!(s.take_finished().len(), 1);
        assert!(s.take_finished().is_empty(), "drained");
    }
}
