//! Continuous-batching scheduler: requests join, decode, cancel and retire
//! **while the engine is running**.
//!
//! The closed [`Batch`](crate::batch::Batch) model — push everything, then
//! run — is fine for offline evaluation but is the wrong shape for serving:
//! real traffic churns. This module is the serving loop proper:
//!
//! * [`Scheduler::submit`] accepts a request **at any time**, including
//!   mid-run, and returns a [`RequestHandle`] that can cancel it (queued or
//!   mid-stream).
//! * Each [`tick`](Scheduler::tick) first **admits** queued requests — in
//!   [`Priority`] order (higher classes first, FIFO within a class), up
//!   to [`max_slots`](SchedulerConfig::max_slots) concurrent decodes and
//!   within the KV block budget — then advances every live slot by one
//!   model step.
//! * Admission is **capacity-based**: a request is admitted only when its
//!   worst-case KV footprint (`prompt + max_new` tokens across every
//!   layer) fits in the unreserved remainder of the pool budget, so the
//!   pool can never be exhausted mid-decode. Actual allocation stays
//!   **lazy** — a request that stops after three tokens only ever
//!   allocated blocks for three tokens — so the reservation is an upper
//!   bound the blocks of finished requests immediately flow back out of.
//! * When a higher-priority request cannot fit, the scheduler (with
//!   [`preemption`](SchedulerConfig::preemption) on) **preempts** a
//!   strictly lower-priority victim slot: the victim's KV is swapped to
//!   a cold buffer (restored verbatim on resume) or, past the
//!   [`swap_budget_bytes`](SchedulerConfig::swap_budget_bytes) cap,
//!   dropped and deterministically recomputed. Preempted requests resume
//!   ahead of equal-priority fresh admissions and finish with exactly
//!   the tokens of an uninterrupted run.
//! * The moment a request finishes (budget, stop token, cancellation or
//!   failure) its slot **retires**: engine scratch, workspace and the
//!   session's KV blocks are released and the freed capacity admits the
//!   next queued request on the very next tick.
//!
//! # Determinism contract
//!
//! Admission order is a pure function of the submission sequence:
//! priority classes first, FIFO within a class (head-of-line blocking
//! included: when the best candidate does not fit, nothing lesser jumps
//! it), slots advance in admission order, and events are delivered in
//! slot order — so a fixed submission sequence yields a fixed admission
//! *and preemption* schedule, a fixed event stream, and **bit-identical
//! tokens per request to running that request alone** — whether the
//! request was never preempted, swapped out and restored, or dropped and
//! recomputed — at any slot-thread count
//! ([`parallel`](Scheduler::parallel)) and any kernel-thread count.
//! Interleaving is pure scheduling; it never touches the math.
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer_sparse::engine::EngineBuilder;
//! use sparseinfer_sparse::request::GenerateRequest;
//! use sparseinfer_sparse::scheduler::{Scheduler, SchedulerConfig};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 3).build();
//! let mut scheduler = Scheduler::new(SchedulerConfig {
//!     max_slots: 2,                  // at most two concurrent decodes
//!     block_tokens: 8,               // KV page granularity
//!     kv_block_budget: usize::MAX,   // no memory cap in this example
//!     ..SchedulerConfig::default()   // prefix cache on, default cap
//! });
//! let first = scheduler
//!     .submit(
//!         EngineBuilder::new(&model).build().unwrap(),
//!         &GenerateRequest::new(&[1, 2]).max_new(4),
//!     )
//!     .unwrap();
//! scheduler.tick(|_| {}); // decoding has started…
//! let late = scheduler
//!     .submit(
//!         EngineBuilder::new(&model).build().unwrap(),
//!         &GenerateRequest::new(&[3]).max_new(3),
//!     )
//!     .unwrap(); // …and this request joins mid-run on the next tick.
//! let outputs = scheduler.run();
//! assert_eq!(outputs.len(), 2);
//! assert_eq!(outputs[0].id, first.id());
//! assert_eq!(outputs[1].id, late.id());
//! assert_eq!(outputs[1].tokens.len(), 3);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use sparseinfer_model::kv::{
    KvBlockPool, PrefixHit, PrefixIndex, SwappedKvCache, DEFAULT_BLOCK_TOKENS,
};
use sparseinfer_model::Model;
use sparseinfer_tensor::{ParallelOptions, ThreadPool};

use crate::engine::{Engine, MemoryEstimate, SparsityStats};
use crate::error::EngineError;
use crate::ops::OpCounter;
use crate::request::{FinishReason, GenerateRequest, Priority, RequestRun, TokenEvent};

/// A token emitted by one request inside a scheduler or batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEvent {
    /// The request id returned by [`Scheduler::submit`] /
    /// [`Batch::push`](crate::batch::Batch::push).
    pub request: usize,
    /// Zero-based position in that request's continuation.
    pub index: usize,
    /// The token id.
    pub token: u32,
}

/// The finished result of one scheduled request, with per-request
/// accounting.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// The request id returned by [`Scheduler::submit`] /
    /// [`Batch::push`](crate::batch::Batch::push).
    pub id: usize,
    /// The generated tokens.
    pub tokens: Vec<u32>,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// Operations this request executed (prefill through the bare model is
    /// not counted, matching the single-request path).
    pub ops: OpCounter,
    /// Sparsity statistics, for sparse engines.
    pub stats: Option<SparsityStats>,
    /// The engine configuration name that served the request.
    pub engine: String,
    /// Prompt positions whose KV was attached from the scheduler's prefix
    /// cache instead of being prefilled — the per-request hit accounting.
    /// At least `shared full blocks × block_tokens` for a warm-prefix
    /// request; zero on a cold miss or with the cache disabled.
    pub prefill_skipped_tokens: usize,
    /// Times this request was preempted (swapped out or dropped for
    /// recompute) to make room for a higher-priority admission.
    pub preemptions: usize,
    /// KV blocks this request's preemptions swapped out to cold buffers
    /// (summed over every swap-out; zero for the recompute path).
    pub swapped_blocks: usize,
}

/// Default cap on retained-but-unreferenced prefix blocks (see
/// [`SchedulerConfig::prefix_retain_blocks`]).
pub const DEFAULT_PREFIX_RETAIN_BLOCKS: usize = 512;

/// Admission-control knobs of a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum concurrently decoding requests. Queued requests past this
    /// wait for a slot to retire.
    pub max_slots: usize,
    /// Tokens per KV block — the paging granularity. Smaller blocks waste
    /// less on short answers; larger blocks take the pool lock less often
    /// and share more aggressively (only *full* blocks of a prompt's
    /// densely prefilled region are prefix-sharable).
    pub block_tokens: usize,
    /// Total KV blocks the scheduler's pool may ever hold (across all
    /// layers of all live requests, plus prefix-cache retention).
    /// Admission reserves each request's worst case against this, so
    /// decode can never run out mid-flight. `usize::MAX` disables the
    /// memory gate.
    pub kv_block_budget: usize,
    /// Enables prompt-prefix sharing: full KV blocks of each request's
    /// densely prefilled prompt region are published to a
    /// [`PrefixIndex`] and re-attached (copy-on-write, refcounted) to
    /// later requests with the same prompt prefix, skipping their prefill
    /// work and deduplicating their KV memory. Sharing never changes
    /// tokens or event order — a warm run is bit-identical to a cold one.
    pub prefix_cache: bool,
    /// Cap on prefix blocks retained while **no live session references
    /// them** (the warm cache kept for future requests). Exceeding it
    /// evicts least-recently-used unreferenced entries; blocks attached
    /// to live sessions are pinned and never count against the cap.
    pub prefix_retain_blocks: usize,
    /// Enables preemption: when the admission head outranks a live slot
    /// and cannot fit, the scheduler evicts a victim slot (swap-out or
    /// drop-and-recompute) instead of waiting for it to finish. Safe to
    /// leave on for single-priority workloads — preemption only ever
    /// fires across *strictly different* priority classes.
    pub preemption: bool,
    /// Cap on how many times one request may be preempted. Past it, a
    /// slot becomes non-preemptable and higher-priority arrivals wait
    /// for it like any other capacity — bounding worst-case thrash (each
    /// preemption re-pays restore or recompute work).
    pub max_preemptions_per_request: usize,
    /// Byte budget for swapped-out cold KV buffers. A preemption whose
    /// victim does not fit under it falls back to drop-and-recompute
    /// (memory-free, but the resume re-runs prefill and replays the
    /// generated tokens). `u64::MAX` means swap always; `0` means
    /// recompute always.
    pub swap_budget_bytes: u64,
}

impl Default for SchedulerConfig {
    /// Eight slots, default block size, no KV budget, prefix cache on
    /// with the default retention cap, preemption on (swap preferred,
    /// at most three preemptions per request).
    fn default() -> Self {
        Self {
            max_slots: 8,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            kv_block_budget: usize::MAX,
            prefix_cache: true,
            prefix_retain_blocks: DEFAULT_PREFIX_RETAIN_BLOCKS,
            preemption: true,
            max_preemptions_per_request: 3,
            swap_budget_bytes: u64::MAX,
        }
    }
}

impl SchedulerConfig {
    /// No admission limits at all: every submitted request is admitted on
    /// the next tick — the configuration the closed
    /// [`Batch`](crate::batch::Batch) wrapper runs on. The prefix cache
    /// is off, preserving the closed batch's exact memory profile (a
    /// fully finished batch holds zero decode memory).
    pub fn unbounded() -> Self {
        Self {
            max_slots: usize::MAX,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            kv_block_budget: usize::MAX,
            prefix_cache: false,
            prefix_retain_blocks: 0,
            preemption: false,
            max_preemptions_per_request: 0,
            swap_budget_bytes: 0,
        }
    }
}

/// Aggregate prefix-cache accounting of one [`Scheduler`] (see
/// [`Scheduler::prefix_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Requests admitted with at least one attached prefix block.
    pub attached_requests: usize,
    /// Total prompt positions skipped across all requests (the sum of
    /// every output's `prefill_skipped_tokens`).
    pub skipped_tokens: u64,
    /// Block handles newly published to the index over the scheduler's
    /// lifetime.
    pub published_blocks: usize,
    /// Block handles evicted from the index (LRU cap or budget pressure).
    pub evicted_blocks: usize,
    /// Blocks the index currently retains (pinned + unreferenced).
    pub retained_blocks: usize,
    /// Retained blocks no live session references (the evictable set the
    /// [`prefix_retain_blocks`](SchedulerConfig::prefix_retain_blocks)
    /// cap applies to).
    pub unreferenced_blocks: usize,
}

/// Aggregate preemption accounting of one [`Scheduler`] (see
/// [`Scheduler::preemption_stats`]). All zeros when
/// [`preemption`](SchedulerConfig::preemption) is off or traffic is
/// single-priority.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreemptionStats {
    /// Preemption events over the scheduler's lifetime (each counts one
    /// victim eviction, whether by swap-out or drop-and-recompute).
    pub preemptions: usize,
    /// Preemptions that swapped the victim's KV to a cold buffer.
    pub swapped_out: usize,
    /// Preemptions that dropped the victim's KV for recompute.
    pub recomputed: usize,
    /// Preempted requests resumed into a slot so far.
    pub resumed: usize,
    /// Requests currently preempted and waiting to resume.
    pub preempted_now: usize,
    /// Bytes currently held in cold swap buffers (also surfaced as
    /// [`MemoryEstimate::swapped_bytes`]).
    pub swapped_bytes: u64,
}

/// Out-of-band stop signals a [`RequestHandle`] can raise, in the shared
/// atomic the scheduler polls each tick. The first raised signal wins:
/// whichever of cancel/expire lands first determines the finish reason.
const SIGNAL_LIVE: u8 = 0;
const SIGNAL_CANCELLED: u8 = 1;
const SIGNAL_EXPIRED: u8 = 2;

/// A cancellation/deadline handle for one submitted request.
///
/// Cheaply cloneable (one `Arc` bump) and fully thread-safe (`Send +
/// Sync`), so a serving frontend can hand clones to connection threads
/// that cancel or expire requests without ever touching the scheduler
/// thread. [`cancel`](Self::cancel) and [`expire`](Self::expire) take
/// effect at the start of the next tick, whether the request is still
/// queued or already decoding. The request still appears in the outputs,
/// finished with [`FinishReason::Cancelled`] /
/// [`FinishReason::DeadlineExceeded`] and whatever tokens it had produced.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    id: usize,
    signal: Arc<AtomicU8>,
}

impl RequestHandle {
    /// The request id (also [`BatchOutput::id`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Raises `signal` unless one was already raised — the first signal
    /// decides the finish reason, so a cancel racing an expiry is
    /// deterministic per request: whichever atomically lands first wins.
    fn raise(&self, signal: u8) {
        let _ =
            self.signal
                .compare_exchange(SIGNAL_LIVE, signal, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Requests cancellation. Idempotent; a no-op after
    /// [`expire`](Self::expire) already fired.
    pub fn cancel(&self) {
        self.raise(SIGNAL_CANCELLED);
    }

    /// Marks the request's deadline as exceeded, finishing it with
    /// [`FinishReason::DeadlineExceeded`] on the next tick. Idempotent; a
    /// no-op after [`cancel`](Self::cancel) already fired.
    pub fn expire(&self) {
        self.raise(SIGNAL_EXPIRED);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.signal.load(Ordering::Relaxed) == SIGNAL_CANCELLED
    }

    /// Whether deadline expiry has been signalled.
    pub fn is_expired(&self) -> bool {
        self.signal.load(Ordering::Relaxed) == SIGNAL_EXPIRED
    }
}

/// A request waiting for admission.
struct QueuedRequest<'m> {
    id: usize,
    engine: Box<dyn Engine + 'm>,
    req: GenerateRequest,
    signal: Arc<AtomicU8>,
    /// Gross worst-case KV blocks (`prompt + max_new` tokens × layers);
    /// admission nets out prefix hits before reserving.
    worst_blocks: usize,
    /// Prefix-index identity of the engine's model (see
    /// [`Scheduler::model_key`]).
    model_key: usize,
}

/// A request occupying a decode slot.
struct LiveSlot<'m> {
    id: usize,
    engine: Box<dyn Engine + 'm>,
    run: RequestRun,
    /// The original request — kept so preemption can rebuild the run
    /// (recompute path) and admission can read the priority class.
    req: GenerateRequest,
    signal: Arc<AtomicU8>,
    /// KV blocks this slot's reservation still covers. Starts at the
    /// admission-time net worst case; shrinks when the slot publishes
    /// blocks to the prefix index (ownership shifts to the index's
    /// retention accounting).
    worst_blocks: usize,
    /// Gross worst-case blocks (no prefix netting) — what a swap-out
    /// resume must re-reserve, since a restored cache is all-private.
    gross_blocks: usize,
    model_key: usize,
    /// Whether this slot's densely prefilled prompt blocks have been
    /// offered to the prefix index (done at most once per request).
    published: bool,
    /// Times this request has been preempted so far (capped by
    /// [`SchedulerConfig::max_preemptions_per_request`]).
    preempt_count: usize,
    /// KV blocks this request's preemptions have swapped out so far.
    swapped_blocks: usize,
    /// Event produced by the most recent tick (drained in slot order so
    /// streaming callbacks see a deterministic sequence even when slots
    /// advance on worker threads).
    last_event: Option<TokenEvent>,
}

impl<'m> LiveSlot<'m> {
    /// Consumes a finished slot into its output, dropping the engine's
    /// per-session scratch and returning the session's KV blocks to the
    /// pool.
    fn into_output(self) -> BatchOutput {
        let prefill_skipped_tokens = self.run.prefill_skipped_tokens();
        let generation = self.run.into_generation();
        BatchOutput {
            id: self.id,
            tokens: generation.tokens,
            finish: generation.finish,
            ops: *self.engine.ops(),
            stats: self.engine.stats().cloned(),
            engine: self.engine.name().to_string(),
            prefill_skipped_tokens,
            preemptions: self.preempt_count,
            swapped_blocks: self.swapped_blocks,
        }
    }
}

/// The output of a request that never occupied a decode slot (cancelled in
/// the queue, or — defensively — failed at admission): no tokens, counters
/// as the engine left them.
fn unstarted_output(q: QueuedRequest<'_>, finish: FinishReason) -> BatchOutput {
    BatchOutput {
        id: q.id,
        tokens: Vec::new(),
        finish,
        ops: *q.engine.ops(),
        stats: q.engine.stats().cloned(),
        engine: q.engine.name().to_string(),
        prefill_skipped_tokens: 0,
        preemptions: 0,
        swapped_blocks: 0,
    }
}

/// Where a preempted request's decode state lives while it waits to
/// resume.
enum PreemptedState {
    /// KV content copied to cold buffers; the run itself is kept (its
    /// sampler state, emitted tokens and step cursor are all intact) but
    /// holds **zero** pool blocks until restore.
    Swapped {
        run: Box<RequestRun>,
        cold: Vec<SwappedKvCache>,
        cold_bytes: u64,
    },
    /// KV dropped entirely; only the emitted tokens survive. Resume
    /// rebuilds the run from scratch and deterministically replays them.
    Recompute { tokens: Vec<u32> },
}

/// A request evicted from its slot by a higher-priority admission,
/// waiting in the resume queue. Holds no pool blocks in either state —
/// preempted requests can never deadlock the pool.
struct PreemptedRequest<'m> {
    id: usize,
    engine: Box<dyn Engine + 'm>,
    req: GenerateRequest,
    signal: Arc<AtomicU8>,
    model_key: usize,
    /// Gross worst-case blocks — the swap-resume reservation.
    gross_blocks: usize,
    /// Times preempted so far (including the eviction that created this
    /// entry).
    preemptions: usize,
    /// KV blocks swapped out over this request's lifetime.
    swapped_blocks: usize,
    /// Prefix-cache positions skipped by the *original* admission —
    /// carried so the final output still reports them after a recompute
    /// resume rebuilt the run (possibly with a different hit).
    prefill_skipped: usize,
    /// Whether the prompt prefix was already offered to the index.
    published: bool,
    state: PreemptedState,
}

/// The output of a request cancelled or expired while preempted: the
/// tokens it had produced before eviction, with its preemption counters.
/// Dropping `state` frees the cold buffers (swap path) here; the caller
/// already settled the scheduler's `cold_bytes` accounting.
fn preempted_output(p: PreemptedRequest<'_>, finish: FinishReason) -> BatchOutput {
    let tokens = match p.state {
        PreemptedState::Swapped { run, .. } => run.tokens().to_vec(),
        PreemptedState::Recompute { tokens } => tokens,
    };
    BatchOutput {
        id: p.id,
        tokens,
        finish,
        ops: *p.engine.ops(),
        stats: p.engine.stats().cloned(),
        engine: p.engine.name().to_string(),
        prefill_skipped_tokens: p.prefill_skipped,
        preemptions: p.preemptions,
        swapped_blocks: p.swapped_blocks,
    }
}

/// A continuous-batching scheduler over a paged KV cache.
///
/// See the [module docs](self) for the serving model and the determinism
/// contract. Constructed via [`new`](Scheduler::new) (plus
/// [`parallel`](Scheduler::parallel) for slot-level thread parallelism);
/// driven either tick by tick ([`tick`](Scheduler::tick) +
/// [`take_finished`](Scheduler::take_finished), the open-ended serving
/// loop) or to completion ([`run`](Scheduler::run) /
/// [`run_streaming`](Scheduler::run_streaming)).
pub struct Scheduler<'m> {
    config: SchedulerConfig,
    pool: ThreadPool,
    kv: KvBlockPool,
    /// Published prompt-prefix blocks, re-attached to later requests.
    /// Every physical block is covered by exactly one of: a live slot's
    /// reservation, or the index's retention — the invariant the budget
    /// math in [`admit`](Self::admit) rests on.
    index: PrefixIndex,
    queue: VecDeque<QueuedRequest<'m>>,
    slots: Vec<LiveSlot<'m>>,
    /// Preempted requests waiting to resume, in eviction order. At equal
    /// priority the resume queue is served *ahead* of fresh admissions —
    /// a preempted request already earned its admission once.
    preempted: VecDeque<PreemptedRequest<'m>>,
    finished: Vec<BatchOutput>,
    next_id: usize,
    /// Worst-case blocks reserved by the live slots (net of prefix hits
    /// and already-published blocks).
    reserved_blocks: usize,
    /// KV dimension established by the first submission: every session
    /// pages out of one fixed-block-size pool, so later submissions must
    /// match (validated in [`submit`](Self::submit)).
    kv_dim: Option<usize>,
    /// Lifetime prefix-cache counters behind
    /// [`prefix_stats`](Self::prefix_stats).
    attached_requests: usize,
    skipped_tokens: u64,
    published_blocks: usize,
    evicted_blocks: usize,
    /// Lifetime preemption counters behind
    /// [`preemption_stats`](Self::preemption_stats).
    preemptions: usize,
    swapped_out: usize,
    recomputed: usize,
    resumed: usize,
    /// Bytes currently held by cold swap buffers across all preempted
    /// requests — gated by [`SchedulerConfig::swap_budget_bytes`].
    cold_bytes: u64,
}

impl std::fmt::Debug for Scheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("queued", &self.queue.len())
            .field("active", &self.slots.len())
            .field("preempted", &self.preempted.len())
            .field("finished", &self.finished.len())
            .field("reserved_blocks", &self.reserved_blocks)
            .finish()
    }
}

impl<'m> Scheduler<'m> {
    /// An empty scheduler with the given admission-control configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_slots`, `config.block_tokens` or
    /// `config.kv_block_budget` is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.max_slots > 0, "max_slots must be positive");
        Self {
            kv: KvBlockPool::with_budget(config.block_tokens, config.kv_block_budget),
            config,
            pool: ThreadPool::single(),
            index: PrefixIndex::new(),
            queue: VecDeque::new(),
            slots: Vec::new(),
            preempted: VecDeque::new(),
            finished: Vec::new(),
            next_id: 0,
            reserved_blocks: 0,
            kv_dim: None,
            attached_requests: 0,
            skipped_tokens: 0,
            published_blocks: 0,
            evicted_blocks: 0,
            preemptions: 0,
            swapped_out: 0,
            recomputed: 0,
            resumed: 0,
            cold_bytes: 0,
        }
    }

    /// Sets slot-level parallelism: each tick advances up to
    /// `parallel.threads` live slots concurrently. Token streams and event
    /// order are bit-identical to the sequential schedule.
    pub fn parallel(mut self, parallel: ParallelOptions) -> Self {
        self.pool = ThreadPool::new(parallel);
        self
    }

    /// Uses an existing worker pool for slot-level parallelism (the
    /// scheduler analogue of
    /// [`EngineBuilder::pool`](crate::engine::EngineBuilder::pool)).
    pub fn slot_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The admission-control configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The scheduler's KV block pool — exposed for capacity monitoring
    /// (`blocks_in_use`, `memory_bytes`) and tests.
    pub fn kv_pool(&self) -> &KvBlockPool {
        &self.kv
    }

    /// Worst-case KV blocks `req` can ever need on `engine`'s model: one
    /// cache per layer, each holding up to `prompt + max_new` tokens.
    fn worst_case_blocks(&self, engine: &dyn Engine, req: &GenerateRequest) -> usize {
        let worst_tokens = req.prompt.len() + req.max_new;
        engine.model().layers().len() * self.kv.blocks_for_tokens(worst_tokens)
    }

    /// Prompt positions of a `prompt_len`-token prompt that are prefix-
    /// sharable: whole blocks inside the densely prefilled region (every
    /// prompt token but the last — the last goes through the engine, so
    /// its KV is engine-dependent and never shared). The single source of
    /// this bound: admission's lookup and prefix publication must agree
    /// on it exactly, or hits and retained entries silently diverge.
    fn sharable_tokens(prompt_len: usize, block_tokens: usize) -> usize {
        ((prompt_len - 1) / block_tokens) * block_tokens
    }

    /// Prefix-index identity of `model`.
    ///
    /// Pointer identity is sound here: every submitted engine borrows its
    /// model for `'m`, and a `Scheduler<'m>` value is only usable while
    /// `'m` is alive — so every model ever submitted outlives every later
    /// use of this scheduler, and an address can never be recycled by a
    /// different model within its lifetime.
    fn model_key(model: &Model) -> usize {
        model as *const Model as usize
    }

    /// Submits a request, at any time — before the first tick or while
    /// other requests are mid-decode. The request waits in the admission
    /// queue — served in [`Priority`] order, FIFO within its class —
    /// until a slot and enough unreserved KV budget are available. The
    /// engine's counters are reset so the eventual [`BatchOutput::ops`]
    /// is exactly this request's work.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the prompt is empty;
    /// [`EngineError::KvBudgetExceeded`] if the request's worst-case KV
    /// footprint exceeds the *total* budget (it could never be admitted:
    /// prefix sharing dedupes blocks *across* requests, but this
    /// request's shared-plus-private blocks still all exist physically);
    /// [`EngineError::KvDimensionMismatch`] if the engine's model uses a
    /// different KV dimension than this scheduler's earlier submissions —
    /// every session pages out of one shared pool of fixed-size blocks,
    /// so one scheduler serves models of one KV width (mixed *engine
    /// kinds* over one model remain fully supported).
    pub fn submit(
        &mut self,
        mut engine: Box<dyn Engine + 'm>,
        req: &GenerateRequest,
    ) -> Result<RequestHandle, EngineError> {
        if req.prompt.is_empty() {
            return Err(EngineError::EmptyPrompt);
        }
        let model_dim = engine.model().config().hidden_dim;
        if let Some(dim) = self.kv_dim {
            if dim != model_dim {
                return Err(EngineError::KvDimensionMismatch {
                    scheduler_dim: dim,
                    model_dim,
                });
            }
        }
        let worst_blocks = self.worst_case_blocks(engine.as_ref(), req);
        if worst_blocks > self.config.kv_block_budget {
            return Err(EngineError::KvBudgetExceeded {
                required_blocks: worst_blocks,
                budget_blocks: self.config.kv_block_budget,
            });
        }
        let model_key = Self::model_key(engine.model());
        // Latch the pool's dimension only once the request is accepted — a
        // rejected submit must not pin the scheduler to its model.
        self.kv_dim = Some(model_dim);
        engine.reset_ops();
        let id = self.next_id;
        self.next_id += 1;
        let signal = Arc::new(AtomicU8::new(SIGNAL_LIVE));
        self.queue.push_back(QueuedRequest {
            id,
            engine,
            req: req.clone(),
            signal: Arc::clone(&signal),
            worst_blocks,
            model_key,
        });
        Ok(RequestHandle { id, signal })
    }

    /// Admits work in priority order: the oldest request of the highest
    /// priority class present — across both the resume queue and the
    /// fresh queue, resume winning ties — admits first, FIFO within a
    /// class. Head-of-line blocking *within that order* is deliberate:
    /// when the best candidate cannot fit even after warm-cache eviction
    /// and (if enabled) preemption, nothing else is admitted — skipping
    /// ahead would make the schedule depend on sizes, not order, breaking
    /// both fairness and the determinism contract.
    fn admit(&mut self) {
        // Cancelled- or expired-while-waiting requests retire immediately,
        // wherever they sit: the point of either signal is to release the
        // engine's memory (and any cold swap buffer) now, and it must not
        // wait behind a blocked head. (Dropping entries never reorders the
        // survivors, so FIFO-within-class determinism is untouched.)
        let mut i = 0;
        while i < self.queue.len() {
            let finish = match self.queue[i].signal.load(Ordering::Relaxed) {
                SIGNAL_CANCELLED => Some(FinishReason::Cancelled),
                SIGNAL_EXPIRED => Some(FinishReason::DeadlineExceeded),
                _ => None,
            };
            if let Some(finish) = finish {
                let q = self.queue.remove(i).expect("index in bounds");
                self.finished.push(unstarted_output(q, finish));
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.preempted.len() {
            let finish = match self.preempted[i].signal.load(Ordering::Relaxed) {
                SIGNAL_CANCELLED => Some(FinishReason::Cancelled),
                SIGNAL_EXPIRED => Some(FinishReason::DeadlineExceeded),
                _ => None,
            };
            if let Some(finish) = finish {
                let p = self.preempted.remove(i).expect("index in bounds");
                if let PreemptedState::Swapped { cold_bytes, .. } = p.state {
                    self.cold_bytes -= cold_bytes;
                }
                self.finished.push(preempted_output(p, finish));
            } else {
                i += 1;
            }
        }
        loop {
            let Some((resume, at)) = self.next_candidate() else {
                return;
            };
            let admitted = if resume {
                self.try_resume(at)
            } else {
                self.try_admit_fresh(at)
            };
            if !admitted {
                return;
            }
        }
    }

    /// The next admission candidate: the oldest entry of the highest
    /// priority class present across the resume queue and the fresh
    /// queue. The resume queue wins priority ties — a preempted request
    /// already earned its admission once. Returns `(is_resume, index)`
    /// into the winning queue.
    fn next_candidate(&self) -> Option<(bool, usize)> {
        fn best(priorities: impl Iterator<Item = Priority>) -> Option<(usize, Priority)> {
            let mut best: Option<(usize, Priority)> = None;
            for (i, p) in priorities.enumerate() {
                if best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((i, p));
                }
            }
            best
        }
        let resume = best(self.preempted.iter().map(|p| p.req.priority));
        let fresh = best(self.queue.iter().map(|q| q.req.priority));
        match (resume, fresh) {
            (Some((ri, rp)), Some((_, fp))) if rp >= fp => Some((true, ri)),
            (_, Some((fi, _))) => Some((false, fi)),
            (Some((ri, _)), None) => Some((true, ri)),
            (None, None) => None,
        }
    }

    /// Makes room for a `priority`-class candidate needing a slot and
    /// `need_blocks` unoccupied budget blocks: evicts unreferenced
    /// warm-cache blocks first (they are only *kept warm*), then — with
    /// [`preemption`](SchedulerConfig::preemption) on — preempts strictly
    /// lower-priority victim slots one at a time. Returns whether the
    /// candidate now fits. Blocks pinned by live sessions (including the
    /// candidate's own prefix hit) are never evicted.
    fn make_room(&mut self, priority: Priority, need_blocks: usize) -> bool {
        loop {
            let occupied = self.reserved_blocks + self.index.retained_blocks();
            if occupied.saturating_add(need_blocks) > self.config.kv_block_budget {
                let needed = occupied.saturating_add(need_blocks) - self.config.kv_block_budget;
                let evicted = self
                    .index
                    .evict_unreferenced_to(self.index.unreferenced_blocks().saturating_sub(needed));
                self.evicted_blocks += evicted;
            }
            let occupied = self.reserved_blocks + self.index.retained_blocks();
            let budget_ok = occupied.saturating_add(need_blocks) <= self.config.kv_block_budget;
            let slot_ok = self.slots.len() < self.config.max_slots;
            if budget_ok && slot_ok {
                return true;
            }
            if !self.config.preemption {
                return false;
            }
            let Some(victim) = self.select_victim(priority) else {
                return false;
            };
            self.preempt(victim);
        }
    }

    /// Selects the preemption victim for a `priority`-class candidate:
    /// among slots of *strictly lower* priority still under the
    /// per-request preemption cap, the lowest class loses first and the
    /// youngest (latest-admitted) within that class loses first — oldest
    /// work, which has absorbed the most compute, is disturbed last.
    fn select_victim(&self, priority: Priority) -> Option<usize> {
        let mut victim: Option<(usize, Priority)> = None;
        // Slots are in admission order; `<=` on ties keeps the youngest.
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.req.priority >= priority
                || slot.preempt_count >= self.config.max_preemptions_per_request
            {
                continue;
            }
            if victim.is_none_or(|(_, vp)| slot.req.priority <= vp) {
                victim = Some((i, slot.req.priority));
            }
        }
        victim.map(|(i, _)| i)
    }

    /// Evicts slot `victim` to the resume queue: its reservation returns
    /// to the budget, and its KV content is either swapped to a cold
    /// buffer (within [`swap_budget_bytes`](SchedulerConfig::swap_budget_bytes))
    /// or dropped for deterministic recompute. Either way the request
    /// holds zero pool blocks afterwards.
    fn preempt(&mut self, victim: usize) {
        let slot = self.slots.remove(victim);
        self.reserved_blocks -= slot.worst_blocks;
        self.preemptions += 1;
        let mut run = slot.run;
        let prefill_skipped = run.prefill_skipped_tokens();
        let bytes = run.kv_content_bytes();
        let mut swapped_blocks = slot.swapped_blocks;
        let state = if self.cold_bytes.saturating_add(bytes) <= self.config.swap_budget_bytes {
            swapped_blocks += run.kv_blocks_held();
            let cold = run.swap_out_kv();
            self.cold_bytes += bytes;
            self.swapped_out += 1;
            PreemptedState::Swapped {
                run: Box::new(run),
                cold,
                cold_bytes: bytes,
            }
        } else {
            self.recomputed += 1;
            let tokens = run.tokens().to_vec();
            // Dropping the run frees every block the victim held.
            drop(run);
            PreemptedState::Recompute { tokens }
        };
        self.preempted.push_back(PreemptedRequest {
            id: slot.id,
            engine: slot.engine,
            req: slot.req,
            signal: slot.signal,
            model_key: slot.model_key,
            gross_blocks: slot.gross_blocks,
            preemptions: slot.preempt_count + 1,
            swapped_blocks,
            prefill_skipped,
            published: slot.published,
            state,
        });
    }

    /// Tries to resume preempted request `at`. A swapped request restores
    /// its cold buffers into freshly allocated (all-private) blocks under
    /// its gross reservation; a recompute request re-admits like a fresh
    /// request (prefix lookup included) and deterministically replays its
    /// already-emitted tokens. Returns whether it was admitted.
    fn try_resume(&mut self, at: usize) -> bool {
        let priority = self.preempted[at].req.priority;
        match &self.preempted[at].state {
            PreemptedState::Swapped { .. } => {
                let need = self.preempted[at].gross_blocks;
                if !self.make_room(priority, need) {
                    return false;
                }
                let p = self.preempted.remove(at).expect("index in bounds");
                let PreemptedState::Swapped {
                    run,
                    cold,
                    cold_bytes,
                } = p.state
                else {
                    unreachable!("state matched Swapped above");
                };
                let mut run = *run;
                run.restore_kv(&cold);
                drop(cold);
                self.cold_bytes -= cold_bytes;
                self.resumed += 1;
                self.reserved_blocks += p.gross_blocks;
                self.slots.push(LiveSlot {
                    id: p.id,
                    engine: p.engine,
                    run,
                    req: p.req,
                    signal: p.signal,
                    worst_blocks: p.gross_blocks,
                    gross_blocks: p.gross_blocks,
                    model_key: p.model_key,
                    published: p.published,
                    preempt_count: p.preemptions,
                    swapped_blocks: p.swapped_blocks,
                    last_event: None,
                });
                true
            }
            PreemptedState::Recompute { .. } => {
                let hit = if self.config.prefix_cache {
                    let p = &self.preempted[at];
                    let max_tokens =
                        Self::sharable_tokens(p.req.prompt.len(), self.config.block_tokens);
                    self.index.lookup(
                        p.model_key,
                        &p.req.prompt,
                        self.config.block_tokens,
                        max_tokens,
                    )
                } else {
                    None
                };
                let hit_blocks = hit.as_ref().map_or(0, PrefixHit::total_blocks);
                let net_worst = self.preempted[at].gross_blocks - hit_blocks;
                if !self.make_room(priority, net_worst) {
                    return false;
                }
                let p = self.preempted.remove(at).expect("index in bounds");
                let PreemptedState::Recompute { tokens } = p.state else {
                    unreachable!("state matched Recompute above");
                };
                match RequestRun::with_replay(
                    &p.req,
                    p.engine.as_ref(),
                    &self.kv,
                    hit.as_ref(),
                    tokens,
                ) {
                    Ok(run) => {
                        if let Some(hit) = &hit {
                            self.attached_requests += 1;
                            self.skipped_tokens += hit.tokens as u64;
                        }
                        self.resumed += 1;
                        self.reserved_blocks += net_worst;
                        self.slots.push(LiveSlot {
                            id: p.id,
                            engine: p.engine,
                            run,
                            req: p.req,
                            signal: p.signal,
                            worst_blocks: net_worst,
                            gross_blocks: p.gross_blocks,
                            model_key: p.model_key,
                            // Re-offering already-published blocks is a
                            // no-op in the index, so republishing after a
                            // recompute is harmless either way.
                            published: false,
                            preempt_count: p.preemptions,
                            swapped_blocks: p.swapped_blocks,
                            last_event: None,
                        });
                    }
                    // Unreachable today (the request was admitted once
                    // already), kept as data like the fresh path.
                    Err(err) => {
                        let prefill_skipped = p.prefill_skipped;
                        self.finished.push(BatchOutput {
                            id: p.id,
                            tokens: Vec::new(),
                            finish: FinishReason::Failed(err),
                            ops: *p.engine.ops(),
                            stats: p.engine.stats().cloned(),
                            engine: p.engine.name().to_string(),
                            prefill_skipped_tokens: prefill_skipped,
                            preemptions: p.preemptions,
                            swapped_blocks: p.swapped_blocks,
                        });
                    }
                }
                true
            }
        }
    }

    /// Tries to admit fresh queued request `at` into a slot. Returns
    /// whether it left the queue (admitted, or defensively failed).
    fn try_admit_fresh(&mut self, at: usize) -> bool {
        // Look up the candidate's prompt prefix *before* the budget
        // check: shared blocks are already paid for by the index's
        // retention (or a publisher's reservation), so the candidate only
        // needs to reserve its net worst case. Attaching refreshes the
        // LRU and pins the blocks for the slot's lifetime.
        let hit = if self.config.prefix_cache {
            let q = &self.queue[at];
            let max_tokens = Self::sharable_tokens(q.req.prompt.len(), self.config.block_tokens);
            self.index.lookup(
                q.model_key,
                &q.req.prompt,
                self.config.block_tokens,
                max_tokens,
            )
        } else {
            None
        };
        let hit_blocks = hit.as_ref().map_or(0, PrefixHit::total_blocks);
        let net_worst = self.queue[at].worst_blocks - hit_blocks;
        // Budget invariant: every physical block is covered by exactly
        // one of (a) a live slot's reservation or (b) the index's
        // retention — so admission fits `net_worst` into what is left of
        // the budget after both (swapped-out requests hold no blocks).
        if !self.make_room(self.queue[at].req.priority, net_worst) {
            if self.reserved_blocks == 0 && self.slots.is_empty() {
                // Unreachable today: submit rejects gross-over-budget
                // requests, and with no live slots the eviction pass in
                // `make_room` reclaims every retained block except the
                // candidate's own hit — which nets out exactly — so the
                // candidate always fits here. Kept as data so a future
                // accounting gap fails one request instead of
                // deadlocking the queue.
                drop(hit);
                let q = self.queue.remove(at).expect("index in bounds");
                let err = EngineError::KvBudgetExceeded {
                    required_blocks: net_worst,
                    budget_blocks: self.config.kv_block_budget,
                };
                self.finished
                    .push(unstarted_output(q, FinishReason::Failed(err)));
                return true;
            }
            return false;
        }
        // Removing mid-queue never reorders the survivors, so FIFO
        // within each priority class is preserved.
        let q = self.queue.remove(at).expect("index in bounds");
        match RequestRun::with_prefix(&q.req, q.engine.as_ref(), &self.kv, hit.as_ref()) {
            Ok(run) => {
                if let Some(hit) = &hit {
                    self.attached_requests += 1;
                    self.skipped_tokens += hit.tokens as u64;
                }
                self.reserved_blocks += net_worst;
                self.slots.push(LiveSlot {
                    id: q.id,
                    engine: q.engine,
                    run,
                    req: q.req,
                    signal: q.signal,
                    worst_blocks: net_worst,
                    gross_blocks: q.worst_blocks,
                    model_key: q.model_key,
                    published: false,
                    preempt_count: 0,
                    swapped_blocks: 0,
                    last_event: None,
                });
            }
            // Unreachable today (submit validates the prompt), kept as
            // data so a future validation gap degrades to a failed
            // request instead of a poisoned serving loop.
            Err(err) => self
                .finished
                .push(unstarted_output(q, FinishReason::Failed(err))),
        }
        true
    }

    /// Offers every slot's densely prefilled prompt blocks to the prefix
    /// index, once per request, the tick its dense prefill completes
    /// (retiring slots included — a finished request's prefix stays warm
    /// for the next one). Blocks the index newly retains shift out of the
    /// publishing slot's reservation: the budget invariant (every block
    /// covered exactly once) is preserved, and the index then answers for
    /// them until eviction.
    fn publish_prefixes(&mut self) {
        if !self.config.prefix_cache {
            return;
        }
        let bt = self.config.block_tokens;
        for slot in &mut self.slots {
            if slot.published || !slot.run.dense_prefill_complete() {
                continue;
            }
            slot.published = true;
            let prompt = slot.run.prompt();
            let sharable = Self::sharable_tokens(prompt.len(), bt);
            if sharable == 0 {
                continue;
            }
            let runs = sharable / bt;
            let per_layer: Vec<Vec<_>> = slot
                .run
                .kv_caches()
                .iter()
                .map(|cache| {
                    cache
                        .as_paged()
                        .expect("scheduler sessions are paged")
                        .block_refs()[..runs]
                        .to_vec()
                })
                .collect();
            let newly = self
                .index
                .publish(slot.model_key, &prompt[..sharable], bt, &per_layer);
            self.published_blocks += newly;
            // The newly retained blocks were allocated under this slot's
            // reservation; hand their coverage to the index.
            let shift = newly.min(slot.worst_blocks);
            slot.worst_blocks -= shift;
            self.reserved_blocks -= shift;
        }
    }

    /// Enforces the retention cap on unreferenced prefix blocks — run at
    /// the end of every tick, *after* retirement, so blocks a retiring
    /// request just unpinned are re-checked immediately.
    fn enforce_prefix_cap(&mut self) {
        if !self.config.prefix_cache {
            return;
        }
        let evicted = self
            .index
            .evict_unreferenced_to(self.config.prefix_retain_blocks);
        self.evicted_blocks += evicted;
    }

    /// One scheduling round: admit what fits, apply pending cancellations,
    /// advance every live slot by one model step — concurrently when built
    /// with [`parallel`](Self::parallel) — deliver this round's tokens to
    /// `on_token` in slot order, and retire finished slots (releasing
    /// their KV blocks and engine scratch immediately). Returns the number
    /// of unfinished requests (queued + live) remaining.
    ///
    /// A slot whose engine fails mid-decode finishes with
    /// [`FinishReason::Failed`] and retires like any other; the scheduler
    /// keeps serving its remaining requests.
    pub fn tick(&mut self, mut on_token: impl FnMut(BatchEvent)) -> usize {
        self.admit();
        for slot in &mut self.slots {
            match slot.signal.load(Ordering::Relaxed) {
                SIGNAL_CANCELLED => slot.run.cancel(),
                SIGNAL_EXPIRED => slot.run.expire(),
                _ => {}
            }
        }
        self.pool.run_tasks(&mut self.slots, |_, slot| {
            slot.last_event = if slot.run.finished() {
                None
            } else {
                // An Err has already marked the run finished with a
                // Failed reason; retirement below records it.
                slot.run.advance(slot.engine.as_mut()).unwrap_or(None)
            };
        });
        // Publish freshly completed prompt prefixes before retirement, so
        // a request finishing this very tick still leaves its prefix warm.
        self.publish_prefixes();
        for slot in &mut self.slots {
            if let Some(TokenEvent { index, token }) = slot.last_event.take() {
                on_token(BatchEvent {
                    request: slot.id,
                    index,
                    token,
                });
            }
        }
        // Retire in slot order; `Vec::remove` keeps admission order for
        // the survivors (max_slots is small, the O(n) shift is noise).
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].run.finished() {
                let slot = self.slots.remove(i);
                self.reserved_blocks -= slot.worst_blocks;
                self.finished.push(slot.into_output());
            } else {
                i += 1;
            }
        }
        self.enforce_prefix_cap();
        self.unfinished_requests()
    }

    /// Requests submitted over the scheduler's lifetime.
    pub fn submitted(&self) -> usize {
        self.next_id
    }

    /// Requests not yet finished (queued, live, or preempted).
    pub fn unfinished_requests(&self) -> usize {
        self.queue.len() + self.slots.len() + self.preempted.len()
    }

    /// Requests waiting for admission (fresh submissions only; preempted
    /// requests awaiting resume are counted by
    /// [`preempted_requests`](Self::preempted_requests)).
    pub fn pending_requests(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently occupying decode slots.
    pub fn active_slots(&self) -> usize {
        self.slots.len()
    }

    /// Requests currently preempted and waiting to resume.
    pub fn preempted_requests(&self) -> usize {
        self.preempted.len()
    }

    /// Worst-case KV blocks currently reserved by the live slots (net of
    /// prefix hits and blocks already handed to the index's retention).
    pub fn reserved_blocks(&self) -> usize {
        self.reserved_blocks
    }

    /// Aggregate prefix-cache accounting: hit/publication/eviction
    /// counters over the scheduler's lifetime plus the index's current
    /// retention. All zeros when
    /// [`prefix_cache`](SchedulerConfig::prefix_cache) is off.
    pub fn prefix_stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            attached_requests: self.attached_requests,
            skipped_tokens: self.skipped_tokens,
            published_blocks: self.published_blocks,
            evicted_blocks: self.evicted_blocks,
            retained_blocks: self.index.retained_blocks(),
            unreferenced_blocks: self.index.unreferenced_blocks(),
        }
    }

    /// Aggregate preemption accounting: eviction/swap/recompute/resume
    /// counters over the scheduler's lifetime plus the current preempted
    /// population and cold-buffer bytes.
    pub fn preemption_stats(&self) -> PreemptionStats {
        PreemptionStats {
            preemptions: self.preemptions,
            swapped_out: self.swapped_out,
            recomputed: self.recomputed,
            resumed: self.resumed,
            preempted_now: self.preempted.len(),
            swapped_bytes: self.cold_bytes,
        }
    }

    /// Drains the outputs of every request finished so far, in finish
    /// order — the incremental collection point for open-ended serving
    /// loops that never drain the scheduler completely.
    pub fn take_finished(&mut self) -> Vec<BatchOutput> {
        std::mem::take(&mut self.finished)
    }

    /// Memory of the scheduler's execution state: engine memory over every
    /// queued, live and preempted request (shared predictor bytes counted
    /// **once per distinct predictor**, deduplicated by `Arc` identity)
    /// plus the KV blocks live sessions and the prefix cache currently
    /// hold, plus — reported separately as
    /// [`swapped_bytes`](MemoryEstimate::swapped_bytes) — the cold
    /// buffers of swapped-out preempted requests. The pool
    /// reports **physical** blocks — a prefix block attached to ten
    /// sessions costs its bytes once — and is added exactly once here,
    /// never per session, so shared blocks are never double-counted.
    /// Retired requests contribute nothing — their scratch is dropped and
    /// their private blocks are back in the pool — which is the
    /// measurable form of the O(live tokens) memory property.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut seen = Vec::new();
        let mut total = MemoryEstimate::default();
        let engines = self
            .slots
            .iter()
            .map(|s| s.engine.as_ref())
            .chain(self.queue.iter().map(|q| q.engine.as_ref()))
            .chain(self.preempted.iter().map(|p| p.engine.as_ref()));
        for engine in engines {
            let est = engine.memory_estimate();
            total.per_session_bytes += est.per_session_bytes;
            match engine.shared_state_id() {
                Some(id) if seen.contains(&id) => {}
                Some(id) => {
                    seen.push(id);
                    total.shared_bytes += est.shared_bytes;
                }
                None => total.shared_bytes += est.shared_bytes,
            }
        }
        total.per_session_bytes += self.kv.in_use_bytes();
        // Cold swap buffers live outside the pool — counted separately so
        // swap-out can never silently hide memory from the estimate.
        total.swapped_bytes = self.cold_bytes;
        total
    }

    /// Runs every remaining request to completion and returns the
    /// outputs, in submission order, of every request not already drained
    /// through [`take_finished`](Self::take_finished) — on a scheduler
    /// that never called it, that is every request ever submitted (and
    /// `outputs[handle.id()]` indexing is valid).
    pub fn run(self) -> Vec<BatchOutput> {
        self.run_streaming(|_| {})
    }

    /// Runs every remaining request to completion, streaming each token
    /// through `on_token` as it is produced, interleaved across requests.
    /// Returns the outputs of every request not already drained through
    /// [`take_finished`](Self::take_finished), in submission order.
    pub fn run_streaming(mut self, mut on_token: impl FnMut(BatchEvent)) -> Vec<BatchOutput> {
        while self.tick(&mut on_token) > 0 {}
        let mut outputs = self.finished;
        outputs.sort_by_key(|o| o.id);
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use crate::request::{generate, GenerateRequest, Priority};
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::{Model, ModelConfig};
    use sparseinfer_predictor::AlphaSchedule;
    use sparseinfer_tensor::ParallelOptions;

    fn model() -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), 23).build()
    }

    fn dense<'m>(m: &'m Model) -> Box<dyn Engine + 'm> {
        EngineBuilder::new(m).build().unwrap()
    }

    fn solo_tokens(m: &Model, req: &GenerateRequest) -> Vec<u32> {
        let mut e = dense(m);
        generate(e.as_mut(), req).unwrap().tokens
    }

    #[test]
    fn empty_scheduler_runs_to_nothing() {
        let s = Scheduler::new(SchedulerConfig::default());
        assert_eq!(s.unfinished_requests(), 0);
        assert!(s.run().is_empty());
    }

    #[test]
    fn submit_rejects_empty_prompts() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        let err = s.submit(dense(&m), &GenerateRequest::new(&[])).unwrap_err();
        assert_eq!(err, EngineError::EmptyPrompt);
        assert_eq!(s.submitted(), 0);
    }

    #[test]
    fn submit_rejects_requests_that_can_never_fit() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 4,
            block_tokens: 4,
            kv_block_budget: 3,
            ..SchedulerConfig::default()
        });
        // tiny() has 2 layers: 2 · ceil((2 + 30)/4) = 16 blocks > 3.
        let err = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(30))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::KvBudgetExceeded {
                required_blocks: 16,
                budget_blocks: 3
            }
        );
    }

    #[test]
    fn max_slots_caps_concurrency_and_everything_still_finishes() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(4);
        let expected = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            ..SchedulerConfig::default()
        });
        for _ in 0..5 {
            s.submit(dense(&m), &req).unwrap();
        }
        let mut peak = 0;
        while s.tick(|_| {}) > 0 {
            peak = peak.max(s.active_slots());
        }
        assert_eq!(peak, 2, "admission must fill, but never exceed, the slots");
        let outputs = s.take_finished();
        assert_eq!(outputs.len(), 5);
        for o in &outputs {
            assert_eq!(o.tokens, expected);
            assert_eq!(o.finish, FinishReason::MaxTokens);
        }
    }

    #[test]
    fn kv_budget_serializes_admission_without_starving_anyone() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(4);
        // Worst case per request: 2 layers · ceil(6/4) = 4 blocks; a
        // budget of 5 fits exactly one at a time.
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 4,
            block_tokens: 4,
            kv_block_budget: 5,
            ..SchedulerConfig::default()
        });
        for _ in 0..3 {
            s.submit(dense(&m), &req).unwrap();
        }
        let mut peak = 0;
        while s.tick(|_| {}) > 0 {
            peak = peak.max(s.active_slots());
            assert!(s.reserved_blocks() <= 5, "reservation within budget");
            assert!(s.kv_pool().blocks_in_use() <= 5, "usage within budget");
        }
        assert_eq!(peak, 1, "budget admits one request at a time");
        let outputs = s.take_finished();
        assert_eq!(outputs.len(), 3, "head-of-line blocking is not starvation");
        let expected = solo_tokens(&m, &req);
        assert!(outputs.iter().all(|o| o.tokens == expected));
    }

    #[test]
    fn requests_join_mid_run_and_decode_identically() {
        let m = model();
        let req_a = GenerateRequest::new(&[1, 2, 3]).max_new(6);
        let req_b = GenerateRequest::new(&[7, 8]).max_new(4);
        let solo_a = solo_tokens(&m, &req_a);
        let solo_b = solo_tokens(&m, &req_b);

        let mut s = Scheduler::new(SchedulerConfig::default());
        let a = s.submit(dense(&m), &req_a).unwrap();
        for _ in 0..3 {
            s.tick(|_| {});
        }
        // Joins while `a` is mid-decode.
        let b = s.submit(dense(&m), &req_b).unwrap();
        let outputs = s.run();
        assert_eq!(outputs[a.id()].tokens, solo_a);
        assert_eq!(outputs[b.id()].tokens, solo_b);
    }

    #[test]
    fn cancelling_a_queued_request_retires_it_without_decoding() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            ..SchedulerConfig::default()
        });
        let keep = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(3))
            .unwrap();
        let doomed = s
            .submit(dense(&m), &GenerateRequest::new(&[4]).max_new(3))
            .unwrap();
        doomed.cancel();
        assert!(doomed.is_cancelled());
        let outputs = s.run();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[keep.id()].finish, FinishReason::MaxTokens);
        assert_eq!(outputs[doomed.id()].finish, FinishReason::Cancelled);
        assert!(outputs[doomed.id()].tokens.is_empty());
    }

    #[test]
    fn cancelling_mid_stream_keeps_the_tokens_so_far_and_frees_blocks() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(32);
        let solo = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: usize::MAX,
            ..SchedulerConfig::default()
        });
        let handle = s.submit(dense(&m), &req).unwrap();
        let kv = s.kv_pool().clone();
        let mut streamed = Vec::new();
        for _ in 0..6 {
            s.tick(|ev| streamed.push(ev.token));
        }
        handle.cancel();
        let outputs = s.run();
        assert_eq!(outputs[0].finish, FinishReason::Cancelled);
        assert!(!outputs[0].tokens.is_empty(), "partial output preserved");
        assert!(
            outputs[0].tokens.len() < 32,
            "cancelled well short of budget"
        );
        assert_eq!(outputs[0].tokens, streamed);
        assert_eq!(
            outputs[0].tokens[..],
            solo[..outputs[0].tokens.len()],
            "the prefix matches solo decode exactly"
        );
        assert_eq!(kv.blocks_in_use(), 0, "blocks reclaimed");
    }

    #[test]
    fn retirement_frees_capacity_that_admits_the_next_request() {
        let m = model();
        let short = GenerateRequest::new(&[1, 2]).max_new(2);
        let long = GenerateRequest::new(&[3, 4]).max_new(8);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            ..SchedulerConfig::default()
        });
        s.submit(dense(&m), &short).unwrap();
        s.submit(dense(&m), &long).unwrap();
        // Tick until the short request retires; the long one must then be
        // admitted into the freed slot.
        let mut ticks = 0;
        while s.pending_requests() > 0 {
            s.tick(|_| {});
            ticks += 1;
            assert!(ticks < 64, "the queued request must eventually be admitted");
        }
        let outputs = s.run();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[1].tokens, solo_tokens(&m, &long));
    }

    #[test]
    fn mixed_engine_kinds_share_one_scheduler() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(4);
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(dense(&m), &req).unwrap();
        s.submit(
            EngineBuilder::new(&m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap(),
            &req,
        )
        .unwrap();
        let out = s.run();
        assert_eq!(out[0].engine, "dense");
        assert_eq!(out[1].engine, "sparse:sparseinfer");
        assert!(out[0].stats.is_none());
        assert!(out[1].stats.is_some());
    }

    #[test]
    fn mixed_kv_dimensions_are_rejected_at_submit_not_mid_decode() {
        let m_small = model(); // tiny(): one hidden_dim…
        let mut cfg = ModelConfig::tiny();
        cfg.hidden_dim *= 2; // …and a model with another
        cfg.n_heads = 2;
        let m_big = WeightGenerator::new(&cfg, 5).build();
        let m_twin = WeightGenerator::new(&ModelConfig::tiny(), 77).build();

        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(dense(&m_small), &GenerateRequest::new(&[1]).max_new(2))
            .unwrap();
        let err = s
            .submit(dense(&m_big), &GenerateRequest::new(&[2]).max_new(2))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::KvDimensionMismatch {
                scheduler_dim: m_small.config().hidden_dim,
                model_dim: m_big.config().hidden_dim,
            },
            "a mismatched model must be rejected as data, not a pool panic"
        );
        // The scheduler keeps serving, and distinct models of the *same*
        // KV dimension still mix freely (the pre-scheduler Batch contract).
        s.submit(dense(&m_twin), &GenerateRequest::new(&[3]).max_new(2))
            .unwrap();
        let outputs = s.run();
        assert_eq!(outputs.len(), 2);
        assert!(outputs.iter().all(|o| o.tokens.len() == 2));
    }

    #[test]
    fn rejected_submit_does_not_latch_the_kv_dimension() {
        let m_small = model();
        let mut cfg = ModelConfig::tiny();
        cfg.hidden_dim *= 2;
        cfg.n_heads = 2;
        let m_big = WeightGenerator::new(&cfg, 9).build();

        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: 3,
            ..SchedulerConfig::default()
        });
        // Budget-rejected: must not pin the scheduler to m_big's width.
        let err = s
            .submit(dense(&m_big), &GenerateRequest::new(&[1, 2]).max_new(30))
            .unwrap_err();
        assert!(matches!(err, EngineError::KvBudgetExceeded { .. }));
        // A fitting request over a *different* dimension is still welcome.
        s.submit(dense(&m_small), &GenerateRequest::new(&[1]).max_new(2))
            .unwrap();
        assert_eq!(s.run().len(), 1);
    }

    #[test]
    fn cancelled_requests_behind_a_blocked_head_retire_immediately() {
        let m = model();
        // Budget fits exactly one small request; the big head can never be
        // joined by anything while it waits… but cancellation must not
        // wait with it.
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 3,
            block_tokens: 4,
            kv_block_budget: 4,
            ..SchedulerConfig::default()
        });
        let head = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(4))
            .unwrap();
        let mut doomed = Vec::new();
        for t in 0..3 {
            doomed.push(
                s.submit(dense(&m), &GenerateRequest::new(&[3 + t]).max_new(4))
                    .unwrap(),
            );
        }
        s.tick(|_| {}); // head admitted, the rest queue behind it
        assert_eq!(s.active_slots(), 1);
        assert_eq!(s.pending_requests(), 3);
        for h in &doomed {
            h.cancel();
        }
        s.tick(|_| {});
        assert_eq!(
            s.pending_requests(),
            0,
            "cancelled entries must leave the queue (and drop their \
             engines) even though the head is still decoding"
        );
        let _ = head;
        let outputs = s.run();
        assert_eq!(outputs.len(), 4);
        assert!(outputs[1..]
            .iter()
            .all(|o| o.finish == FinishReason::Cancelled));
        assert_eq!(outputs[0].tokens.len(), 4);
    }

    #[test]
    fn warm_prefix_resubmission_skips_prefill_and_reuses_blocks() {
        let m = model();
        let n_layers = m.config().n_layers;
        // Prompt of 10 tokens at 4 per block: the densely prefilled region
        // is 9 tokens, so 2 full blocks (8 tokens) are sharable.
        let prompt: Vec<u32> = (1..=10).collect();
        let req = GenerateRequest::new(&prompt).max_new(4);
        let solo = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: usize::MAX,
            ..SchedulerConfig::default()
        });
        s.submit(dense(&m), &req).unwrap();
        while s.tick(|_| {}) > 0 {}
        let cold = s.take_finished();
        assert_eq!(cold[0].tokens, solo);
        assert_eq!(cold[0].prefill_skipped_tokens, 0, "first run is cold");
        let created_after_cold = s.kv_pool().blocks_created();
        let stats = s.prefix_stats();
        assert_eq!(stats.published_blocks, 2 * n_layers);
        assert_eq!(stats.retained_blocks, 2 * n_layers);
        assert_eq!(
            stats.unreferenced_blocks, stats.retained_blocks,
            "publisher retired, the index is the sole referrer"
        );
        assert_eq!(stats.attached_requests, 0);

        s.submit(dense(&m), &req).unwrap();
        while s.tick(|_| {}) > 0 {}
        let warm = s.take_finished();
        assert_eq!(warm[0].tokens, solo, "warm decode is bit-identical");
        assert_eq!(
            warm[0].prefill_skipped_tokens, 8,
            "shared full blocks × block_tokens"
        );
        let stats = s.prefix_stats();
        assert_eq!(stats.attached_requests, 1);
        assert_eq!(stats.skipped_tokens, 8);
        assert_eq!(
            s.kv_pool().blocks_created(),
            created_after_cold,
            "the warm run allocated nothing beyond recycled free blocks"
        );
    }

    #[test]
    fn prefix_cache_disabled_never_attaches_or_retains() {
        let m = model();
        let prompt: Vec<u32> = (1..=10).collect();
        let req = GenerateRequest::new(&prompt).max_new(3);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: usize::MAX,
            prefix_cache: false,
            prefix_retain_blocks: 0,
            ..SchedulerConfig::default()
        });
        for _ in 0..2 {
            s.submit(dense(&m), &req).unwrap();
            while s.tick(|_| {}) > 0 {}
        }
        let outputs = s.take_finished();
        assert!(outputs.iter().all(|o| o.prefill_skipped_tokens == 0));
        assert_eq!(s.prefix_stats(), PrefixCacheStats::default());
        assert_eq!(s.kv_pool().blocks_in_use(), 0, "nothing retained");
    }

    #[test]
    fn prefix_retention_cap_evicts_unreferenced_lru_entries() {
        let m = model();
        let n_layers = m.config().n_layers;
        // Each distinct 6-token prompt publishes one full block per layer.
        let cap = n_layers; // room for exactly one retained prefix
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            block_tokens: 4,
            kv_block_budget: usize::MAX,
            prefix_cache: true,
            prefix_retain_blocks: cap,
            ..SchedulerConfig::default()
        });
        for start in [10u32, 25, 40] {
            let prompt: Vec<u32> = (start..start + 6).collect();
            s.submit(dense(&m), &GenerateRequest::new(&prompt).max_new(2))
                .unwrap();
            while s.tick(|_| {}) > 0 {}
        }
        let stats = s.prefix_stats();
        assert!(
            stats.unreferenced_blocks <= cap,
            "cap {} exceeded: {} unreferenced blocks retained",
            cap,
            stats.unreferenced_blocks
        );
        assert!(stats.evicted_blocks >= n_layers, "older prefixes evicted");
        // The most recent prefix is the survivor: resubmitting it hits.
        let prompt: Vec<u32> = (40u32..46).collect();
        s.submit(dense(&m), &GenerateRequest::new(&prompt).max_new(2))
            .unwrap();
        while s.tick(|_| {}) > 0 {}
        let out = s.take_finished();
        assert_eq!(out.last().unwrap().prefill_skipped_tokens, 4);
    }

    #[test]
    fn budget_pressure_evicts_warm_cache_to_admit_new_requests() {
        let m = model();
        let n_layers = m.config().n_layers; // tiny(): 2
                                            // Each request: 5-token prompt + max_new 3 = 8 tokens = 2 blocks
                                            // per layer gross; 1 full block per layer is sharable.
        let gross = n_layers * 2;
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: gross, // exactly one cold request fits
            prefix_cache: true,
            prefix_retain_blocks: usize::MAX, // only budget pressure evicts
            ..SchedulerConfig::default()
        });
        s.submit(
            dense(&m),
            &GenerateRequest::new(&[1, 2, 3, 4, 5]).max_new(3),
        )
        .unwrap();
        while s.tick(|_| {}) > 0 {}
        assert_eq!(s.prefix_stats().retained_blocks, n_layers);
        // A *different* prompt needs the whole budget: the warm cache must
        // be evicted to admit it rather than blocking the queue forever.
        s.submit(
            dense(&m),
            &GenerateRequest::new(&[9, 8, 7, 6, 5]).max_new(3),
        )
        .unwrap();
        let mut ticks = 0;
        while s.tick(|_| {}) > 0 {
            ticks += 1;
            assert!(ticks < 64, "warm retention must not starve admission");
        }
        let outputs = s.take_finished();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[1].tokens.len(), 3);
        assert!(s.prefix_stats().evicted_blocks >= n_layers);
    }

    #[test]
    fn request_handles_cancel_across_threads() {
        // The serving contract: connection threads hold clones of the
        // handle and cancel without touching the scheduler thread.
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<RequestHandle>();

        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        let handle = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(64))
            .unwrap();
        for _ in 0..4 {
            s.tick(|_| {});
        }
        let remote = handle.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("cancelling thread");
        assert!(handle.is_cancelled());
        let outputs = s.run();
        assert_eq!(outputs[0].finish, FinishReason::Cancelled);
        assert!(outputs[0].tokens.len() < 64, "stopped well short of budget");
    }

    #[test]
    fn expired_mid_stream_requests_keep_partial_tokens_and_free_blocks() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(64);
        let solo = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            ..SchedulerConfig::default()
        });
        let handle = s.submit(dense(&m), &req).unwrap();
        let kv = s.kv_pool().clone();
        for _ in 0..6 {
            s.tick(|_| {});
        }
        handle.expire();
        assert!(handle.is_expired());
        let outputs = s.run();
        assert_eq!(outputs[0].finish, FinishReason::DeadlineExceeded);
        assert!(!outputs[0].tokens.is_empty(), "partial output preserved");
        assert_eq!(outputs[0].tokens[..], solo[..outputs[0].tokens.len()]);
        assert_eq!(kv.blocks_in_use(), 0, "blocks reclaimed on expiry");
    }

    #[test]
    fn expired_queued_requests_retire_without_decoding() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            ..SchedulerConfig::default()
        });
        s.submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(3))
            .unwrap();
        let queued = s
            .submit(dense(&m), &GenerateRequest::new(&[4]).max_new(3))
            .unwrap();
        queued.expire();
        let outputs = s.run();
        assert_eq!(outputs[queued.id()].finish, FinishReason::DeadlineExceeded);
        assert!(outputs[queued.id()].tokens.is_empty());
    }

    #[test]
    fn first_raised_signal_wins() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        let h = s
            .submit(dense(&m), &GenerateRequest::new(&[1]).max_new(8))
            .unwrap();
        h.cancel();
        h.expire(); // late expiry must not overwrite the cancellation
        assert!(h.is_cancelled() && !h.is_expired());
        assert_eq!(s.run()[0].finish, FinishReason::Cancelled);

        let mut s = Scheduler::new(SchedulerConfig::default());
        let h = s
            .submit(dense(&m), &GenerateRequest::new(&[1]).max_new(8))
            .unwrap();
        h.expire();
        h.cancel(); // and vice versa
        assert!(h.is_expired() && !h.is_cancelled());
        assert_eq!(s.run()[0].finish, FinishReason::DeadlineExceeded);
    }

    /// One-request-at-a-time budget (2 layers × 2 blocks for a 2-token
    /// prompt + 4 new tokens at 4 tokens/block), prefix cache off so the
    /// block accounting in the assertions stays exact.
    fn preemption_config() -> SchedulerConfig {
        SchedulerConfig {
            max_slots: 4,
            block_tokens: 4,
            kv_block_budget: 4,
            prefix_cache: false,
            prefix_retain_blocks: 0,
            preemption: true,
            max_preemptions_per_request: 8,
            swap_budget_bytes: u64::MAX,
        }
    }

    /// Drives the canonical preemption scenario: a Batch request fills
    /// the whole budget, a High request arrives mid-decode and must
    /// preempt it. Returns (batch output, high output, stats).
    fn preempt_scenario(
        config: SchedulerConfig,
        threads: usize,
    ) -> (BatchOutput, BatchOutput, PreemptionStats) {
        let m = model();
        let batch_req = GenerateRequest::new(&[1, 2])
            .max_new(4)
            .priority(Priority::Batch);
        let high_req = GenerateRequest::new(&[7, 8])
            .max_new(4)
            .priority(Priority::High);
        let mut s = Scheduler::new(config).parallel(ParallelOptions::threads(threads));
        let a = s.submit(dense(&m), &batch_req).unwrap();
        for _ in 0..3 {
            s.tick(|_| {}); // Batch admitted, two tokens emitted…
        }
        let b = s.submit(dense(&m), &high_req).unwrap();
        s.tick(|_| {}); // …and it is evicted for the High arrival here.
        assert_eq!(s.preempted_requests(), 1, "batch request preempted");
        assert_eq!(s.active_slots(), 1, "high request took the slot");
        let kv = s.kv_pool().clone();
        let stats_mid = s.preemption_stats();
        let mut outputs = s.run();
        assert_eq!(kv.blocks_in_use(), 0, "pool drained");
        let high = outputs.remove(b.id());
        let batch = outputs.remove(a.id());
        (batch, high, stats_mid)
    }

    #[test]
    fn high_priority_preempts_batch_by_swap_and_tokens_stay_bit_identical() {
        let m = model();
        let solo_batch = solo_tokens(&m, &GenerateRequest::new(&[1, 2]).max_new(4));
        let solo_high = solo_tokens(&m, &GenerateRequest::new(&[7, 8]).max_new(4));
        for threads in [1, 2, 4] {
            let (batch, high, stats) = preempt_scenario(preemption_config(), threads);
            assert_eq!(stats.preemptions, 1);
            assert_eq!(stats.swapped_out, 1, "swap preferred under no byte cap");
            assert_eq!(stats.recomputed, 0);
            assert!(stats.swapped_bytes > 0, "cold buffer accounted mid-flight");
            assert_eq!(batch.tokens, solo_batch, "swapped run is bit-identical");
            assert_eq!(high.tokens, solo_high);
            assert_eq!(batch.preemptions, 1);
            assert!(batch.swapped_blocks > 0);
            assert_eq!(high.preemptions, 0);
            assert_eq!(high.swapped_blocks, 0);
        }
    }

    #[test]
    fn swap_budget_zero_falls_back_to_deterministic_recompute() {
        let m = model();
        let solo_batch = solo_tokens(&m, &GenerateRequest::new(&[1, 2]).max_new(4));
        let solo_high = solo_tokens(&m, &GenerateRequest::new(&[7, 8]).max_new(4));
        for threads in [1, 2, 4] {
            let config = SchedulerConfig {
                swap_budget_bytes: 0,
                ..preemption_config()
            };
            let (batch, high, stats) = preempt_scenario(config, threads);
            assert_eq!(stats.preemptions, 1);
            assert_eq!(stats.swapped_out, 0);
            assert_eq!(stats.recomputed, 1, "no swap budget: drop and recompute");
            assert_eq!(stats.swapped_bytes, 0);
            assert_eq!(batch.tokens, solo_batch, "recomputed run is bit-identical");
            assert_eq!(high.tokens, solo_high);
            assert_eq!(batch.preemptions, 1);
            assert_eq!(batch.swapped_blocks, 0, "recompute swaps nothing");
        }
    }

    #[test]
    fn cancelling_a_swapped_out_request_frees_cold_bytes_and_pool_drains() {
        let m = model();
        let mut s = Scheduler::new(preemption_config());
        let batch = s
            .submit(
                dense(&m),
                &GenerateRequest::new(&[1, 2])
                    .max_new(4)
                    .priority(Priority::Batch),
            )
            .unwrap();
        for _ in 0..3 {
            s.tick(|_| {}); // two tokens emitted before eviction
        }
        s.submit(
            dense(&m),
            &GenerateRequest::new(&[7, 8])
                .max_new(4)
                .priority(Priority::High),
        )
        .unwrap();
        s.tick(|_| {});
        assert_eq!(s.preempted_requests(), 1);
        assert!(s.preemption_stats().swapped_bytes > 0);
        assert!(
            s.memory_estimate().swapped_bytes > 0,
            "cold buffers must show up in the memory estimate"
        );
        batch.cancel();
        s.tick(|_| {});
        assert_eq!(
            s.preempted_requests(),
            0,
            "cancellation must not wait for a resume slot"
        );
        assert_eq!(s.preemption_stats().swapped_bytes, 0, "cold buffer freed");
        assert_eq!(s.memory_estimate().swapped_bytes, 0);
        let kv = s.kv_pool().clone();
        let outputs = s.run();
        assert_eq!(kv.blocks_in_use(), 0, "pool drains to zero");
        let cancelled = &outputs[batch.id()];
        assert_eq!(cancelled.finish, FinishReason::Cancelled);
        assert!(!cancelled.tokens.is_empty(), "pre-preemption tokens kept");
        assert_eq!(cancelled.preemptions, 1);
    }

    #[test]
    fn preemption_cap_makes_slots_non_preemptable() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_preemptions_per_request: 0,
            ..preemption_config()
        });
        let batch = s
            .submit(
                dense(&m),
                &GenerateRequest::new(&[1, 2])
                    .max_new(4)
                    .priority(Priority::Batch),
            )
            .unwrap();
        s.tick(|_| {});
        let high = s
            .submit(
                dense(&m),
                &GenerateRequest::new(&[7, 8])
                    .max_new(4)
                    .priority(Priority::High),
            )
            .unwrap();
        let mut first_finished = None;
        while s.tick(|_| {}) > 0 {
            if first_finished.is_none() && !s.take_finished().is_empty() {
                first_finished = Some(batch.id());
                assert_eq!(
                    s.preemption_stats().preemptions,
                    0,
                    "cap of 0 disables eviction"
                );
            }
        }
        assert_eq!(
            first_finished,
            Some(batch.id()),
            "at the cap the high request waits for the batch one"
        );
        let _ = high;
    }

    #[test]
    fn preemption_disabled_blocks_like_plain_fifo() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            preemption: false,
            ..preemption_config()
        });
        s.submit(
            dense(&m),
            &GenerateRequest::new(&[1, 2])
                .max_new(4)
                .priority(Priority::Batch),
        )
        .unwrap();
        s.tick(|_| {});
        s.submit(
            dense(&m),
            &GenerateRequest::new(&[7, 8])
                .max_new(4)
                .priority(Priority::High),
        )
        .unwrap();
        while s.tick(|_| {}) > 0 {}
        assert_eq!(s.preemption_stats(), PreemptionStats::default());
    }

    #[test]
    fn priority_classes_admit_before_older_lower_classes() {
        let m = model();
        // One slot, no preemption: admission order alone decides.
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            preemption: false,
            ..SchedulerConfig::default()
        });
        let req = |p: &[u32], prio: Priority| GenerateRequest::new(p).max_new(2).priority(prio);
        let occupant = s.submit(dense(&m), &req(&[9], Priority::Normal)).unwrap();
        s.tick(|_| {}); // occupant holds the only slot
        let batch = s.submit(dense(&m), &req(&[1], Priority::Batch)).unwrap();
        let normal = s.submit(dense(&m), &req(&[2], Priority::Normal)).unwrap();
        let high = s.submit(dense(&m), &req(&[3], Priority::High)).unwrap();
        let mut first_tokens = Vec::new();
        while s.tick(|ev| {
            if ev.index == 0 {
                first_tokens.push(ev.request);
            }
        }) > 0
        {}
        assert_eq!(
            first_tokens,
            vec![occupant.id(), high.id(), normal.id(), batch.id()],
            "admission is priority-first, FIFO within a class"
        );
    }

    #[test]
    fn resumed_requests_admit_ahead_of_equal_priority_fresh_ones() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 4,
            block_tokens: 4,
            kv_block_budget: 4,
            prefix_cache: false,
            prefix_retain_blocks: 0,
            preemption: true,
            max_preemptions_per_request: 8,
            swap_budget_bytes: u64::MAX,
        });
        let batch = s
            .submit(
                dense(&m),
                &GenerateRequest::new(&[1, 2])
                    .max_new(4)
                    .priority(Priority::Batch),
            )
            .unwrap();
        for _ in 0..3 {
            s.tick(|_| {}); // two tokens emitted before eviction
        }
        s.submit(
            dense(&m),
            &GenerateRequest::new(&[7, 8])
                .max_new(4)
                .priority(Priority::High),
        )
        .unwrap();
        s.tick(|_| {});
        assert_eq!(s.preempted_requests(), 1);
        // A fresh Batch request arrives while the first waits to resume:
        // the preempted one must come back first.
        let fresh = s
            .submit(
                dense(&m),
                &GenerateRequest::new(&[4, 5])
                    .max_new(4)
                    .priority(Priority::Batch),
            )
            .unwrap();
        let mut events = Vec::new();
        while s.tick(|ev| events.push((ev.request, ev.index))) > 0 {}
        let resumed_at = events
            .iter()
            .position(|&(r, i)| r == batch.id() && i == 2)
            .expect("the resumed request continues at index 2, gapless");
        let fresh_at = events
            .iter()
            .position(|&(r, i)| r == fresh.id() && i == 0)
            .expect("the fresh request eventually starts");
        assert!(
            resumed_at < fresh_at,
            "the resume queue admits ahead of equal-priority fresh work"
        );
        let outputs = s.take_finished();
        let resumed = outputs.iter().find(|o| o.id == batch.id()).unwrap();
        let fresh_out = outputs.iter().find(|o| o.id == fresh.id()).unwrap();
        assert_eq!(resumed.preemptions, 1);
        assert_eq!(fresh_out.preemptions, 0);
        assert_eq!(s.preemption_stats().resumed, 1);
    }

    #[test]
    fn take_finished_drains_incrementally() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(dense(&m), &GenerateRequest::new(&[1]).max_new(1))
            .unwrap();
        s.submit(dense(&m), &GenerateRequest::new(&[2, 3]).max_new(6))
            .unwrap();
        while s.take_finished().is_empty() {
            s.tick(|_| {});
        }
        assert!(s.unfinished_requests() > 0, "long request still going");
        while s.tick(|_| {}) > 0 {}
        assert_eq!(s.take_finished().len(), 1);
        assert!(s.take_finished().is_empty(), "drained");
    }
}
