//! Continuous-batching scheduler: requests join, decode, cancel and retire
//! **while the engine is running**.
//!
//! The closed [`Batch`](crate::batch::Batch) model — push everything, then
//! run — is fine for offline evaluation but is the wrong shape for serving:
//! real traffic churns. This module is the serving loop proper:
//!
//! * [`Scheduler::submit`] accepts a request **at any time**, including
//!   mid-run, and returns a [`RequestHandle`] that can cancel it (queued or
//!   mid-stream).
//! * Each [`tick`](Scheduler::tick) first **admits** queued requests — in
//!   strict FIFO order, up to [`max_slots`](SchedulerConfig::max_slots)
//!   concurrent decodes and within the KV block budget — then advances
//!   every live slot by one model step.
//! * Admission is **capacity-based**: a request is admitted only when its
//!   worst-case KV footprint (`prompt + max_new` tokens across every
//!   layer) fits in the unreserved remainder of the pool budget, so the
//!   pool can never be exhausted mid-decode and nothing ever needs to be
//!   preempted. Actual allocation stays **lazy** — a request that stops
//!   after three tokens only ever allocated blocks for three tokens — so
//!   the reservation is an upper bound the blocks of finished requests
//!   immediately flow back out of.
//! * The moment a request finishes (budget, stop token, cancellation or
//!   failure) its slot **retires**: engine scratch, workspace and the
//!   session's KV blocks are released and the freed capacity admits the
//!   next queued request on the very next tick.
//!
//! # Determinism contract
//!
//! Admission is FIFO (head-of-line blocking included: when the oldest
//! queued request does not fit, nothing younger jumps it), slots advance in
//! admission order, and events are delivered in slot order — so a fixed
//! submission sequence yields a fixed admission schedule, a fixed event
//! stream, and **bit-identical tokens per request to running that request
//! alone**, at any slot-thread count ([`parallel`](Scheduler::parallel))
//! and any kernel-thread count. Interleaving is pure scheduling; it never
//! touches the math.
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer_sparse::engine::EngineBuilder;
//! use sparseinfer_sparse::request::GenerateRequest;
//! use sparseinfer_sparse::scheduler::{Scheduler, SchedulerConfig};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 3).build();
//! let mut scheduler = Scheduler::new(SchedulerConfig {
//!     max_slots: 2,                  // at most two concurrent decodes
//!     block_tokens: 8,               // KV page granularity
//!     kv_block_budget: usize::MAX,   // no memory cap in this example
//!     ..SchedulerConfig::default()   // prefix cache on, default cap
//! });
//! let first = scheduler
//!     .submit(
//!         EngineBuilder::new(&model).build().unwrap(),
//!         &GenerateRequest::new(&[1, 2]).max_new(4),
//!     )
//!     .unwrap();
//! scheduler.tick(|_| {}); // decoding has started…
//! let late = scheduler
//!     .submit(
//!         EngineBuilder::new(&model).build().unwrap(),
//!         &GenerateRequest::new(&[3]).max_new(3),
//!     )
//!     .unwrap(); // …and this request joins mid-run on the next tick.
//! let outputs = scheduler.run();
//! assert_eq!(outputs.len(), 2);
//! assert_eq!(outputs[0].id, first.id());
//! assert_eq!(outputs[1].id, late.id());
//! assert_eq!(outputs[1].tokens.len(), 3);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use sparseinfer_model::kv::{KvBlockPool, PrefixHit, PrefixIndex, DEFAULT_BLOCK_TOKENS};
use sparseinfer_model::Model;
use sparseinfer_tensor::{ParallelOptions, ThreadPool};

use crate::engine::{Engine, MemoryEstimate, SparsityStats};
use crate::error::EngineError;
use crate::ops::OpCounter;
use crate::request::{FinishReason, GenerateRequest, RequestRun, TokenEvent};

/// A token emitted by one request inside a scheduler or batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEvent {
    /// The request id returned by [`Scheduler::submit`] /
    /// [`Batch::push`](crate::batch::Batch::push).
    pub request: usize,
    /// Zero-based position in that request's continuation.
    pub index: usize,
    /// The token id.
    pub token: u32,
}

/// The finished result of one scheduled request, with per-request
/// accounting.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// The request id returned by [`Scheduler::submit`] /
    /// [`Batch::push`](crate::batch::Batch::push).
    pub id: usize,
    /// The generated tokens.
    pub tokens: Vec<u32>,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// Operations this request executed (prefill through the bare model is
    /// not counted, matching the single-request path).
    pub ops: OpCounter,
    /// Sparsity statistics, for sparse engines.
    pub stats: Option<SparsityStats>,
    /// The engine configuration name that served the request.
    pub engine: String,
    /// Prompt positions whose KV was attached from the scheduler's prefix
    /// cache instead of being prefilled — the per-request hit accounting.
    /// At least `shared full blocks × block_tokens` for a warm-prefix
    /// request; zero on a cold miss or with the cache disabled.
    pub prefill_skipped_tokens: usize,
}

/// Default cap on retained-but-unreferenced prefix blocks (see
/// [`SchedulerConfig::prefix_retain_blocks`]).
pub const DEFAULT_PREFIX_RETAIN_BLOCKS: usize = 512;

/// Admission-control knobs of a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum concurrently decoding requests. Queued requests past this
    /// wait for a slot to retire.
    pub max_slots: usize,
    /// Tokens per KV block — the paging granularity. Smaller blocks waste
    /// less on short answers; larger blocks take the pool lock less often
    /// and share more aggressively (only *full* blocks of a prompt's
    /// densely prefilled region are prefix-sharable).
    pub block_tokens: usize,
    /// Total KV blocks the scheduler's pool may ever hold (across all
    /// layers of all live requests, plus prefix-cache retention).
    /// Admission reserves each request's worst case against this, so
    /// decode can never run out mid-flight. `usize::MAX` disables the
    /// memory gate.
    pub kv_block_budget: usize,
    /// Enables prompt-prefix sharing: full KV blocks of each request's
    /// densely prefilled prompt region are published to a
    /// [`PrefixIndex`] and re-attached (copy-on-write, refcounted) to
    /// later requests with the same prompt prefix, skipping their prefill
    /// work and deduplicating their KV memory. Sharing never changes
    /// tokens or event order — a warm run is bit-identical to a cold one.
    pub prefix_cache: bool,
    /// Cap on prefix blocks retained while **no live session references
    /// them** (the warm cache kept for future requests). Exceeding it
    /// evicts least-recently-used unreferenced entries; blocks attached
    /// to live sessions are pinned and never count against the cap.
    pub prefix_retain_blocks: usize,
}

impl Default for SchedulerConfig {
    /// Eight slots, default block size, no KV budget, prefix cache on
    /// with the default retention cap.
    fn default() -> Self {
        Self {
            max_slots: 8,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            kv_block_budget: usize::MAX,
            prefix_cache: true,
            prefix_retain_blocks: DEFAULT_PREFIX_RETAIN_BLOCKS,
        }
    }
}

impl SchedulerConfig {
    /// No admission limits at all: every submitted request is admitted on
    /// the next tick — the configuration the closed
    /// [`Batch`](crate::batch::Batch) wrapper runs on. The prefix cache
    /// is off, preserving the closed batch's exact memory profile (a
    /// fully finished batch holds zero decode memory).
    pub fn unbounded() -> Self {
        Self {
            max_slots: usize::MAX,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            kv_block_budget: usize::MAX,
            prefix_cache: false,
            prefix_retain_blocks: 0,
        }
    }
}

/// Aggregate prefix-cache accounting of one [`Scheduler`] (see
/// [`Scheduler::prefix_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Requests admitted with at least one attached prefix block.
    pub attached_requests: usize,
    /// Total prompt positions skipped across all requests (the sum of
    /// every output's `prefill_skipped_tokens`).
    pub skipped_tokens: u64,
    /// Block handles newly published to the index over the scheduler's
    /// lifetime.
    pub published_blocks: usize,
    /// Block handles evicted from the index (LRU cap or budget pressure).
    pub evicted_blocks: usize,
    /// Blocks the index currently retains (pinned + unreferenced).
    pub retained_blocks: usize,
    /// Retained blocks no live session references (the evictable set the
    /// [`prefix_retain_blocks`](SchedulerConfig::prefix_retain_blocks)
    /// cap applies to).
    pub unreferenced_blocks: usize,
}

/// Out-of-band stop signals a [`RequestHandle`] can raise, in the shared
/// atomic the scheduler polls each tick. The first raised signal wins:
/// whichever of cancel/expire lands first determines the finish reason.
const SIGNAL_LIVE: u8 = 0;
const SIGNAL_CANCELLED: u8 = 1;
const SIGNAL_EXPIRED: u8 = 2;

/// A cancellation/deadline handle for one submitted request.
///
/// Cheaply cloneable (one `Arc` bump) and fully thread-safe (`Send +
/// Sync`), so a serving frontend can hand clones to connection threads
/// that cancel or expire requests without ever touching the scheduler
/// thread. [`cancel`](Self::cancel) and [`expire`](Self::expire) take
/// effect at the start of the next tick, whether the request is still
/// queued or already decoding. The request still appears in the outputs,
/// finished with [`FinishReason::Cancelled`] /
/// [`FinishReason::DeadlineExceeded`] and whatever tokens it had produced.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    id: usize,
    signal: Arc<AtomicU8>,
}

impl RequestHandle {
    /// The request id (also [`BatchOutput::id`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Raises `signal` unless one was already raised — the first signal
    /// decides the finish reason, so a cancel racing an expiry is
    /// deterministic per request: whichever atomically lands first wins.
    fn raise(&self, signal: u8) {
        let _ =
            self.signal
                .compare_exchange(SIGNAL_LIVE, signal, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Requests cancellation. Idempotent; a no-op after
    /// [`expire`](Self::expire) already fired.
    pub fn cancel(&self) {
        self.raise(SIGNAL_CANCELLED);
    }

    /// Marks the request's deadline as exceeded, finishing it with
    /// [`FinishReason::DeadlineExceeded`] on the next tick. Idempotent; a
    /// no-op after [`cancel`](Self::cancel) already fired.
    pub fn expire(&self) {
        self.raise(SIGNAL_EXPIRED);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.signal.load(Ordering::Relaxed) == SIGNAL_CANCELLED
    }

    /// Whether deadline expiry has been signalled.
    pub fn is_expired(&self) -> bool {
        self.signal.load(Ordering::Relaxed) == SIGNAL_EXPIRED
    }
}

/// A request waiting for admission.
struct QueuedRequest<'m> {
    id: usize,
    engine: Box<dyn Engine + 'm>,
    req: GenerateRequest,
    signal: Arc<AtomicU8>,
    /// Gross worst-case KV blocks (`prompt + max_new` tokens × layers);
    /// admission nets out prefix hits before reserving.
    worst_blocks: usize,
    /// Prefix-index identity of the engine's model (see
    /// [`Scheduler::model_key`]).
    model_key: usize,
}

/// A request occupying a decode slot.
struct LiveSlot<'m> {
    id: usize,
    engine: Box<dyn Engine + 'm>,
    run: RequestRun,
    signal: Arc<AtomicU8>,
    /// KV blocks this slot's reservation still covers. Starts at the
    /// admission-time net worst case; shrinks when the slot publishes
    /// blocks to the prefix index (ownership shifts to the index's
    /// retention accounting).
    worst_blocks: usize,
    model_key: usize,
    /// Whether this slot's densely prefilled prompt blocks have been
    /// offered to the prefix index (done at most once per request).
    published: bool,
    /// Event produced by the most recent tick (drained in slot order so
    /// streaming callbacks see a deterministic sequence even when slots
    /// advance on worker threads).
    last_event: Option<TokenEvent>,
}

impl<'m> LiveSlot<'m> {
    /// Consumes a finished slot into its output, dropping the engine's
    /// per-session scratch and returning the session's KV blocks to the
    /// pool.
    fn into_output(self) -> BatchOutput {
        let prefill_skipped_tokens = self.run.prefill_skipped_tokens();
        let generation = self.run.into_generation();
        BatchOutput {
            id: self.id,
            tokens: generation.tokens,
            finish: generation.finish,
            ops: *self.engine.ops(),
            stats: self.engine.stats().cloned(),
            engine: self.engine.name().to_string(),
            prefill_skipped_tokens,
        }
    }
}

/// The output of a request that never occupied a decode slot (cancelled in
/// the queue, or — defensively — failed at admission): no tokens, counters
/// as the engine left them.
fn unstarted_output(q: QueuedRequest<'_>, finish: FinishReason) -> BatchOutput {
    BatchOutput {
        id: q.id,
        tokens: Vec::new(),
        finish,
        ops: *q.engine.ops(),
        stats: q.engine.stats().cloned(),
        engine: q.engine.name().to_string(),
        prefill_skipped_tokens: 0,
    }
}

/// A continuous-batching scheduler over a paged KV cache.
///
/// See the [module docs](self) for the serving model and the determinism
/// contract. Constructed via [`new`](Scheduler::new) (plus
/// [`parallel`](Scheduler::parallel) for slot-level thread parallelism);
/// driven either tick by tick ([`tick`](Scheduler::tick) +
/// [`take_finished`](Scheduler::take_finished), the open-ended serving
/// loop) or to completion ([`run`](Scheduler::run) /
/// [`run_streaming`](Scheduler::run_streaming)).
pub struct Scheduler<'m> {
    config: SchedulerConfig,
    pool: ThreadPool,
    kv: KvBlockPool,
    /// Published prompt-prefix blocks, re-attached to later requests.
    /// Every physical block is covered by exactly one of: a live slot's
    /// reservation, or the index's retention — the invariant the budget
    /// math in [`admit`](Self::admit) rests on.
    index: PrefixIndex,
    queue: VecDeque<QueuedRequest<'m>>,
    slots: Vec<LiveSlot<'m>>,
    finished: Vec<BatchOutput>,
    next_id: usize,
    /// Worst-case blocks reserved by the live slots (net of prefix hits
    /// and already-published blocks).
    reserved_blocks: usize,
    /// KV dimension established by the first submission: every session
    /// pages out of one fixed-block-size pool, so later submissions must
    /// match (validated in [`submit`](Self::submit)).
    kv_dim: Option<usize>,
    /// Lifetime prefix-cache counters behind
    /// [`prefix_stats`](Self::prefix_stats).
    attached_requests: usize,
    skipped_tokens: u64,
    published_blocks: usize,
    evicted_blocks: usize,
}

impl std::fmt::Debug for Scheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("queued", &self.queue.len())
            .field("active", &self.slots.len())
            .field("finished", &self.finished.len())
            .field("reserved_blocks", &self.reserved_blocks)
            .finish()
    }
}

impl<'m> Scheduler<'m> {
    /// An empty scheduler with the given admission-control configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_slots`, `config.block_tokens` or
    /// `config.kv_block_budget` is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.max_slots > 0, "max_slots must be positive");
        Self {
            kv: KvBlockPool::with_budget(config.block_tokens, config.kv_block_budget),
            config,
            pool: ThreadPool::single(),
            index: PrefixIndex::new(),
            queue: VecDeque::new(),
            slots: Vec::new(),
            finished: Vec::new(),
            next_id: 0,
            reserved_blocks: 0,
            kv_dim: None,
            attached_requests: 0,
            skipped_tokens: 0,
            published_blocks: 0,
            evicted_blocks: 0,
        }
    }

    /// Sets slot-level parallelism: each tick advances up to
    /// `parallel.threads` live slots concurrently. Token streams and event
    /// order are bit-identical to the sequential schedule.
    pub fn parallel(mut self, parallel: ParallelOptions) -> Self {
        self.pool = ThreadPool::new(parallel);
        self
    }

    /// Uses an existing worker pool for slot-level parallelism (the
    /// scheduler analogue of
    /// [`EngineBuilder::pool`](crate::engine::EngineBuilder::pool)).
    pub fn slot_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The admission-control configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The scheduler's KV block pool — exposed for capacity monitoring
    /// (`blocks_in_use`, `memory_bytes`) and tests.
    pub fn kv_pool(&self) -> &KvBlockPool {
        &self.kv
    }

    /// Worst-case KV blocks `req` can ever need on `engine`'s model: one
    /// cache per layer, each holding up to `prompt + max_new` tokens.
    fn worst_case_blocks(&self, engine: &dyn Engine, req: &GenerateRequest) -> usize {
        let worst_tokens = req.prompt.len() + req.max_new;
        engine.model().layers().len() * self.kv.blocks_for_tokens(worst_tokens)
    }

    /// Prompt positions of a `prompt_len`-token prompt that are prefix-
    /// sharable: whole blocks inside the densely prefilled region (every
    /// prompt token but the last — the last goes through the engine, so
    /// its KV is engine-dependent and never shared). The single source of
    /// this bound: admission's lookup and prefix publication must agree
    /// on it exactly, or hits and retained entries silently diverge.
    fn sharable_tokens(prompt_len: usize, block_tokens: usize) -> usize {
        ((prompt_len - 1) / block_tokens) * block_tokens
    }

    /// Prefix-index identity of `model`.
    ///
    /// Pointer identity is sound here: every submitted engine borrows its
    /// model for `'m`, and a `Scheduler<'m>` value is only usable while
    /// `'m` is alive — so every model ever submitted outlives every later
    /// use of this scheduler, and an address can never be recycled by a
    /// different model within its lifetime.
    fn model_key(model: &Model) -> usize {
        model as *const Model as usize
    }

    /// Submits a request, at any time — before the first tick or while
    /// other requests are mid-decode. The request waits in a FIFO
    /// admission queue until a slot and enough unreserved KV budget are
    /// available. The engine's counters are reset so the eventual
    /// [`BatchOutput::ops`] is exactly this request's work.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the prompt is empty;
    /// [`EngineError::KvBudgetExceeded`] if the request's worst-case KV
    /// footprint exceeds the *total* budget (it could never be admitted:
    /// prefix sharing dedupes blocks *across* requests, but this
    /// request's shared-plus-private blocks still all exist physically);
    /// [`EngineError::KvDimensionMismatch`] if the engine's model uses a
    /// different KV dimension than this scheduler's earlier submissions —
    /// every session pages out of one shared pool of fixed-size blocks,
    /// so one scheduler serves models of one KV width (mixed *engine
    /// kinds* over one model remain fully supported).
    pub fn submit(
        &mut self,
        mut engine: Box<dyn Engine + 'm>,
        req: &GenerateRequest,
    ) -> Result<RequestHandle, EngineError> {
        if req.prompt.is_empty() {
            return Err(EngineError::EmptyPrompt);
        }
        let model_dim = engine.model().config().hidden_dim;
        if let Some(dim) = self.kv_dim {
            if dim != model_dim {
                return Err(EngineError::KvDimensionMismatch {
                    scheduler_dim: dim,
                    model_dim,
                });
            }
        }
        let worst_blocks = self.worst_case_blocks(engine.as_ref(), req);
        if worst_blocks > self.config.kv_block_budget {
            return Err(EngineError::KvBudgetExceeded {
                required_blocks: worst_blocks,
                budget_blocks: self.config.kv_block_budget,
            });
        }
        let model_key = Self::model_key(engine.model());
        // Latch the pool's dimension only once the request is accepted — a
        // rejected submit must not pin the scheduler to its model.
        self.kv_dim = Some(model_dim);
        engine.reset_ops();
        let id = self.next_id;
        self.next_id += 1;
        let signal = Arc::new(AtomicU8::new(SIGNAL_LIVE));
        self.queue.push_back(QueuedRequest {
            id,
            engine,
            req: req.clone(),
            signal: Arc::clone(&signal),
            worst_blocks,
            model_key,
        });
        Ok(RequestHandle { id, signal })
    }

    /// Admits queued requests in FIFO order while a slot is free and the
    /// head of the queue fits in the unreserved KV budget. Head-of-line
    /// blocking is deliberate: skipping ahead would make the admission
    /// schedule depend on sizes, not order, breaking both fairness and the
    /// determinism contract.
    fn admit(&mut self) {
        // Cancelled- or expired-while-queued requests retire immediately,
        // wherever they sit in the queue: the point of either signal is to
        // release the engine's memory now, and it must not wait behind a
        // blocked queue head. (Dropping entries never reorders the
        // survivors, so FIFO determinism is untouched.)
        let mut i = 0;
        while i < self.queue.len() {
            let finish = match self.queue[i].signal.load(Ordering::Relaxed) {
                SIGNAL_CANCELLED => Some(FinishReason::Cancelled),
                SIGNAL_EXPIRED => Some(FinishReason::DeadlineExceeded),
                _ => None,
            };
            if let Some(finish) = finish {
                let q = self.queue.remove(i).expect("index in bounds");
                self.finished.push(unstarted_output(q, finish));
            } else {
                i += 1;
            }
        }
        loop {
            let Some(front) = self.queue.front() else {
                return;
            };
            if self.slots.len() >= self.config.max_slots {
                return;
            }
            // Look up the head's prompt prefix *before* the budget check:
            // shared blocks are already paid for by the index's retention
            // (or a publisher's reservation), so the head only needs to
            // reserve its net worst case. Attaching refreshes the LRU and
            // pins the blocks for the slot's lifetime.
            let hit = if self.config.prefix_cache {
                let max_tokens =
                    Self::sharable_tokens(front.req.prompt.len(), self.config.block_tokens);
                self.index.lookup(
                    front.model_key,
                    &front.req.prompt,
                    self.config.block_tokens,
                    max_tokens,
                )
            } else {
                None
            };
            let hit_blocks = hit.as_ref().map_or(0, PrefixHit::total_blocks);
            let net_worst = front.worst_blocks - hit_blocks;
            // Budget invariant: every physical block is covered by exactly
            // one of (a) a live slot's reservation or (b) the index's
            // retention — so admission fits `net_worst` into what is left
            // of the budget after both.
            let mut occupied = self.reserved_blocks + self.index.retained_blocks();
            if occupied.saturating_add(net_worst) > self.config.kv_block_budget {
                // Unreferenced warm-cache blocks are reclaimable: evict as
                // many as needed (LRU-first) rather than stall admission
                // behind memory we are only *keeping warm*. Blocks pinned
                // by live sessions (including this hit's) stay put.
                let needed = occupied.saturating_add(net_worst) - self.config.kv_block_budget;
                let evicted = self
                    .index
                    .evict_unreferenced_to(self.index.unreferenced_blocks().saturating_sub(needed));
                self.evicted_blocks += evicted;
                occupied = self.reserved_blocks + self.index.retained_blocks();
            }
            if occupied.saturating_add(net_worst) > self.config.kv_block_budget {
                if self.reserved_blocks == 0 {
                    // Unreachable today: submit rejects gross-over-budget
                    // requests, and with no live slots the eviction pass
                    // above reclaims every retained block except the
                    // head's own hit — which nets out exactly — so the
                    // head always fits here. Kept as data so a future
                    // accounting gap fails one request instead of
                    // deadlocking the queue.
                    drop(hit);
                    let q = self.queue.pop_front().expect("front exists");
                    let err = EngineError::KvBudgetExceeded {
                        required_blocks: net_worst,
                        budget_blocks: self.config.kv_block_budget,
                    };
                    self.finished
                        .push(unstarted_output(q, FinishReason::Failed(err)));
                    continue;
                }
                return;
            }
            let q = self.queue.pop_front().expect("front exists");
            match RequestRun::with_prefix(&q.req, q.engine.as_ref(), &self.kv, hit.as_ref()) {
                Ok(run) => {
                    if let Some(hit) = &hit {
                        self.attached_requests += 1;
                        self.skipped_tokens += hit.tokens as u64;
                    }
                    self.reserved_blocks += net_worst;
                    self.slots.push(LiveSlot {
                        id: q.id,
                        engine: q.engine,
                        run,
                        signal: q.signal,
                        worst_blocks: net_worst,
                        model_key: q.model_key,
                        published: false,
                        last_event: None,
                    });
                }
                // Unreachable today (submit validates the prompt), kept as
                // data so a future validation gap degrades to a failed
                // request instead of a poisoned serving loop.
                Err(err) => self
                    .finished
                    .push(unstarted_output(q, FinishReason::Failed(err))),
            }
        }
    }

    /// Offers every slot's densely prefilled prompt blocks to the prefix
    /// index, once per request, the tick its dense prefill completes
    /// (retiring slots included — a finished request's prefix stays warm
    /// for the next one). Blocks the index newly retains shift out of the
    /// publishing slot's reservation: the budget invariant (every block
    /// covered exactly once) is preserved, and the index then answers for
    /// them until eviction.
    fn publish_prefixes(&mut self) {
        if !self.config.prefix_cache {
            return;
        }
        let bt = self.config.block_tokens;
        for slot in &mut self.slots {
            if slot.published || !slot.run.dense_prefill_complete() {
                continue;
            }
            slot.published = true;
            let prompt = slot.run.prompt();
            let sharable = Self::sharable_tokens(prompt.len(), bt);
            if sharable == 0 {
                continue;
            }
            let runs = sharable / bt;
            let per_layer: Vec<Vec<_>> = slot
                .run
                .kv_caches()
                .iter()
                .map(|cache| {
                    cache
                        .as_paged()
                        .expect("scheduler sessions are paged")
                        .block_refs()[..runs]
                        .to_vec()
                })
                .collect();
            let newly = self
                .index
                .publish(slot.model_key, &prompt[..sharable], bt, &per_layer);
            self.published_blocks += newly;
            // The newly retained blocks were allocated under this slot's
            // reservation; hand their coverage to the index.
            let shift = newly.min(slot.worst_blocks);
            slot.worst_blocks -= shift;
            self.reserved_blocks -= shift;
        }
    }

    /// Enforces the retention cap on unreferenced prefix blocks — run at
    /// the end of every tick, *after* retirement, so blocks a retiring
    /// request just unpinned are re-checked immediately.
    fn enforce_prefix_cap(&mut self) {
        if !self.config.prefix_cache {
            return;
        }
        let evicted = self
            .index
            .evict_unreferenced_to(self.config.prefix_retain_blocks);
        self.evicted_blocks += evicted;
    }

    /// One scheduling round: admit what fits, apply pending cancellations,
    /// advance every live slot by one model step — concurrently when built
    /// with [`parallel`](Self::parallel) — deliver this round's tokens to
    /// `on_token` in slot order, and retire finished slots (releasing
    /// their KV blocks and engine scratch immediately). Returns the number
    /// of unfinished requests (queued + live) remaining.
    ///
    /// A slot whose engine fails mid-decode finishes with
    /// [`FinishReason::Failed`] and retires like any other; the scheduler
    /// keeps serving its remaining requests.
    pub fn tick(&mut self, mut on_token: impl FnMut(BatchEvent)) -> usize {
        self.admit();
        for slot in &mut self.slots {
            match slot.signal.load(Ordering::Relaxed) {
                SIGNAL_CANCELLED => slot.run.cancel(),
                SIGNAL_EXPIRED => slot.run.expire(),
                _ => {}
            }
        }
        self.pool.run_tasks(&mut self.slots, |_, slot| {
            slot.last_event = if slot.run.finished() {
                None
            } else {
                // An Err has already marked the run finished with a
                // Failed reason; retirement below records it.
                slot.run.advance(slot.engine.as_mut()).unwrap_or(None)
            };
        });
        // Publish freshly completed prompt prefixes before retirement, so
        // a request finishing this very tick still leaves its prefix warm.
        self.publish_prefixes();
        for slot in &mut self.slots {
            if let Some(TokenEvent { index, token }) = slot.last_event.take() {
                on_token(BatchEvent {
                    request: slot.id,
                    index,
                    token,
                });
            }
        }
        // Retire in slot order; `Vec::remove` keeps admission order for
        // the survivors (max_slots is small, the O(n) shift is noise).
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].run.finished() {
                let slot = self.slots.remove(i);
                self.reserved_blocks -= slot.worst_blocks;
                self.finished.push(slot.into_output());
            } else {
                i += 1;
            }
        }
        self.enforce_prefix_cap();
        self.unfinished_requests()
    }

    /// Requests submitted over the scheduler's lifetime.
    pub fn submitted(&self) -> usize {
        self.next_id
    }

    /// Requests not yet finished (queued plus live).
    pub fn unfinished_requests(&self) -> usize {
        self.queue.len() + self.slots.len()
    }

    /// Requests waiting for admission.
    pub fn pending_requests(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently occupying decode slots.
    pub fn active_slots(&self) -> usize {
        self.slots.len()
    }

    /// Worst-case KV blocks currently reserved by the live slots (net of
    /// prefix hits and blocks already handed to the index's retention).
    pub fn reserved_blocks(&self) -> usize {
        self.reserved_blocks
    }

    /// Aggregate prefix-cache accounting: hit/publication/eviction
    /// counters over the scheduler's lifetime plus the index's current
    /// retention. All zeros when
    /// [`prefix_cache`](SchedulerConfig::prefix_cache) is off.
    pub fn prefix_stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            attached_requests: self.attached_requests,
            skipped_tokens: self.skipped_tokens,
            published_blocks: self.published_blocks,
            evicted_blocks: self.evicted_blocks,
            retained_blocks: self.index.retained_blocks(),
            unreferenced_blocks: self.index.unreferenced_blocks(),
        }
    }

    /// Drains the outputs of every request finished so far, in finish
    /// order — the incremental collection point for open-ended serving
    /// loops that never drain the scheduler completely.
    pub fn take_finished(&mut self) -> Vec<BatchOutput> {
        std::mem::take(&mut self.finished)
    }

    /// Memory of the scheduler's execution state: engine memory over every
    /// queued and live request (shared predictor bytes counted **once per
    /// distinct predictor**, deduplicated by `Arc` identity) plus the KV
    /// blocks live sessions and the prefix cache currently hold. The pool
    /// reports **physical** blocks — a prefix block attached to ten
    /// sessions costs its bytes once — and is added exactly once here,
    /// never per session, so shared blocks are never double-counted.
    /// Retired requests contribute nothing — their scratch is dropped and
    /// their private blocks are back in the pool — which is the
    /// measurable form of the O(live tokens) memory property.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut seen = Vec::new();
        let mut total = MemoryEstimate::default();
        let engines = self
            .slots
            .iter()
            .map(|s| s.engine.as_ref())
            .chain(self.queue.iter().map(|q| q.engine.as_ref()));
        for engine in engines {
            let est = engine.memory_estimate();
            total.per_session_bytes += est.per_session_bytes;
            match engine.shared_state_id() {
                Some(id) if seen.contains(&id) => {}
                Some(id) => {
                    seen.push(id);
                    total.shared_bytes += est.shared_bytes;
                }
                None => total.shared_bytes += est.shared_bytes,
            }
        }
        total.per_session_bytes += self.kv.in_use_bytes();
        total
    }

    /// Runs every remaining request to completion and returns the
    /// outputs, in submission order, of every request not already drained
    /// through [`take_finished`](Self::take_finished) — on a scheduler
    /// that never called it, that is every request ever submitted (and
    /// `outputs[handle.id()]` indexing is valid).
    pub fn run(self) -> Vec<BatchOutput> {
        self.run_streaming(|_| {})
    }

    /// Runs every remaining request to completion, streaming each token
    /// through `on_token` as it is produced, interleaved across requests.
    /// Returns the outputs of every request not already drained through
    /// [`take_finished`](Self::take_finished), in submission order.
    pub fn run_streaming(mut self, mut on_token: impl FnMut(BatchEvent)) -> Vec<BatchOutput> {
        while self.tick(&mut on_token) > 0 {}
        let mut outputs = self.finished;
        outputs.sort_by_key(|o| o.id);
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use crate::request::{generate, GenerateRequest};
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::{Model, ModelConfig};
    use sparseinfer_predictor::AlphaSchedule;

    fn model() -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), 23).build()
    }

    fn dense<'m>(m: &'m Model) -> Box<dyn Engine + 'm> {
        EngineBuilder::new(m).build().unwrap()
    }

    fn solo_tokens(m: &Model, req: &GenerateRequest) -> Vec<u32> {
        let mut e = dense(m);
        generate(e.as_mut(), req).unwrap().tokens
    }

    #[test]
    fn empty_scheduler_runs_to_nothing() {
        let s = Scheduler::new(SchedulerConfig::default());
        assert_eq!(s.unfinished_requests(), 0);
        assert!(s.run().is_empty());
    }

    #[test]
    fn submit_rejects_empty_prompts() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        let err = s.submit(dense(&m), &GenerateRequest::new(&[])).unwrap_err();
        assert_eq!(err, EngineError::EmptyPrompt);
        assert_eq!(s.submitted(), 0);
    }

    #[test]
    fn submit_rejects_requests_that_can_never_fit() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 4,
            block_tokens: 4,
            kv_block_budget: 3,
            ..SchedulerConfig::default()
        });
        // tiny() has 2 layers: 2 · ceil((2 + 30)/4) = 16 blocks > 3.
        let err = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(30))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::KvBudgetExceeded {
                required_blocks: 16,
                budget_blocks: 3
            }
        );
    }

    #[test]
    fn max_slots_caps_concurrency_and_everything_still_finishes() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(4);
        let expected = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            ..SchedulerConfig::default()
        });
        for _ in 0..5 {
            s.submit(dense(&m), &req).unwrap();
        }
        let mut peak = 0;
        while s.tick(|_| {}) > 0 {
            peak = peak.max(s.active_slots());
        }
        assert_eq!(peak, 2, "admission must fill, but never exceed, the slots");
        let outputs = s.take_finished();
        assert_eq!(outputs.len(), 5);
        for o in &outputs {
            assert_eq!(o.tokens, expected);
            assert_eq!(o.finish, FinishReason::MaxTokens);
        }
    }

    #[test]
    fn kv_budget_serializes_admission_without_starving_anyone() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(4);
        // Worst case per request: 2 layers · ceil(6/4) = 4 blocks; a
        // budget of 5 fits exactly one at a time.
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 4,
            block_tokens: 4,
            kv_block_budget: 5,
            ..SchedulerConfig::default()
        });
        for _ in 0..3 {
            s.submit(dense(&m), &req).unwrap();
        }
        let mut peak = 0;
        while s.tick(|_| {}) > 0 {
            peak = peak.max(s.active_slots());
            assert!(s.reserved_blocks() <= 5, "reservation within budget");
            assert!(s.kv_pool().blocks_in_use() <= 5, "usage within budget");
        }
        assert_eq!(peak, 1, "budget admits one request at a time");
        let outputs = s.take_finished();
        assert_eq!(outputs.len(), 3, "head-of-line blocking is not starvation");
        let expected = solo_tokens(&m, &req);
        assert!(outputs.iter().all(|o| o.tokens == expected));
    }

    #[test]
    fn requests_join_mid_run_and_decode_identically() {
        let m = model();
        let req_a = GenerateRequest::new(&[1, 2, 3]).max_new(6);
        let req_b = GenerateRequest::new(&[7, 8]).max_new(4);
        let solo_a = solo_tokens(&m, &req_a);
        let solo_b = solo_tokens(&m, &req_b);

        let mut s = Scheduler::new(SchedulerConfig::default());
        let a = s.submit(dense(&m), &req_a).unwrap();
        for _ in 0..3 {
            s.tick(|_| {});
        }
        // Joins while `a` is mid-decode.
        let b = s.submit(dense(&m), &req_b).unwrap();
        let outputs = s.run();
        assert_eq!(outputs[a.id()].tokens, solo_a);
        assert_eq!(outputs[b.id()].tokens, solo_b);
    }

    #[test]
    fn cancelling_a_queued_request_retires_it_without_decoding() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            ..SchedulerConfig::default()
        });
        let keep = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(3))
            .unwrap();
        let doomed = s
            .submit(dense(&m), &GenerateRequest::new(&[4]).max_new(3))
            .unwrap();
        doomed.cancel();
        assert!(doomed.is_cancelled());
        let outputs = s.run();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[keep.id()].finish, FinishReason::MaxTokens);
        assert_eq!(outputs[doomed.id()].finish, FinishReason::Cancelled);
        assert!(outputs[doomed.id()].tokens.is_empty());
    }

    #[test]
    fn cancelling_mid_stream_keeps_the_tokens_so_far_and_frees_blocks() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(32);
        let solo = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: usize::MAX,
            ..SchedulerConfig::default()
        });
        let handle = s.submit(dense(&m), &req).unwrap();
        let kv = s.kv_pool().clone();
        let mut streamed = Vec::new();
        for _ in 0..6 {
            s.tick(|ev| streamed.push(ev.token));
        }
        handle.cancel();
        let outputs = s.run();
        assert_eq!(outputs[0].finish, FinishReason::Cancelled);
        assert!(!outputs[0].tokens.is_empty(), "partial output preserved");
        assert!(
            outputs[0].tokens.len() < 32,
            "cancelled well short of budget"
        );
        assert_eq!(outputs[0].tokens, streamed);
        assert_eq!(
            outputs[0].tokens[..],
            solo[..outputs[0].tokens.len()],
            "the prefix matches solo decode exactly"
        );
        assert_eq!(kv.blocks_in_use(), 0, "blocks reclaimed");
    }

    #[test]
    fn retirement_frees_capacity_that_admits_the_next_request() {
        let m = model();
        let short = GenerateRequest::new(&[1, 2]).max_new(2);
        let long = GenerateRequest::new(&[3, 4]).max_new(8);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            ..SchedulerConfig::default()
        });
        s.submit(dense(&m), &short).unwrap();
        s.submit(dense(&m), &long).unwrap();
        // Tick until the short request retires; the long one must then be
        // admitted into the freed slot.
        let mut ticks = 0;
        while s.pending_requests() > 0 {
            s.tick(|_| {});
            ticks += 1;
            assert!(ticks < 64, "the queued request must eventually be admitted");
        }
        let outputs = s.run();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[1].tokens, solo_tokens(&m, &long));
    }

    #[test]
    fn mixed_engine_kinds_share_one_scheduler() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(4);
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(dense(&m), &req).unwrap();
        s.submit(
            EngineBuilder::new(&m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap(),
            &req,
        )
        .unwrap();
        let out = s.run();
        assert_eq!(out[0].engine, "dense");
        assert_eq!(out[1].engine, "sparse:sparseinfer");
        assert!(out[0].stats.is_none());
        assert!(out[1].stats.is_some());
    }

    #[test]
    fn mixed_kv_dimensions_are_rejected_at_submit_not_mid_decode() {
        let m_small = model(); // tiny(): one hidden_dim…
        let mut cfg = ModelConfig::tiny();
        cfg.hidden_dim *= 2; // …and a model with another
        cfg.n_heads = 2;
        let m_big = WeightGenerator::new(&cfg, 5).build();
        let m_twin = WeightGenerator::new(&ModelConfig::tiny(), 77).build();

        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(dense(&m_small), &GenerateRequest::new(&[1]).max_new(2))
            .unwrap();
        let err = s
            .submit(dense(&m_big), &GenerateRequest::new(&[2]).max_new(2))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::KvDimensionMismatch {
                scheduler_dim: m_small.config().hidden_dim,
                model_dim: m_big.config().hidden_dim,
            },
            "a mismatched model must be rejected as data, not a pool panic"
        );
        // The scheduler keeps serving, and distinct models of the *same*
        // KV dimension still mix freely (the pre-scheduler Batch contract).
        s.submit(dense(&m_twin), &GenerateRequest::new(&[3]).max_new(2))
            .unwrap();
        let outputs = s.run();
        assert_eq!(outputs.len(), 2);
        assert!(outputs.iter().all(|o| o.tokens.len() == 2));
    }

    #[test]
    fn rejected_submit_does_not_latch_the_kv_dimension() {
        let m_small = model();
        let mut cfg = ModelConfig::tiny();
        cfg.hidden_dim *= 2;
        cfg.n_heads = 2;
        let m_big = WeightGenerator::new(&cfg, 9).build();

        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: 3,
            ..SchedulerConfig::default()
        });
        // Budget-rejected: must not pin the scheduler to m_big's width.
        let err = s
            .submit(dense(&m_big), &GenerateRequest::new(&[1, 2]).max_new(30))
            .unwrap_err();
        assert!(matches!(err, EngineError::KvBudgetExceeded { .. }));
        // A fitting request over a *different* dimension is still welcome.
        s.submit(dense(&m_small), &GenerateRequest::new(&[1]).max_new(2))
            .unwrap();
        assert_eq!(s.run().len(), 1);
    }

    #[test]
    fn cancelled_requests_behind_a_blocked_head_retire_immediately() {
        let m = model();
        // Budget fits exactly one small request; the big head can never be
        // joined by anything while it waits… but cancellation must not
        // wait with it.
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 3,
            block_tokens: 4,
            kv_block_budget: 4,
            ..SchedulerConfig::default()
        });
        let head = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(4))
            .unwrap();
        let mut doomed = Vec::new();
        for t in 0..3 {
            doomed.push(
                s.submit(dense(&m), &GenerateRequest::new(&[3 + t]).max_new(4))
                    .unwrap(),
            );
        }
        s.tick(|_| {}); // head admitted, the rest queue behind it
        assert_eq!(s.active_slots(), 1);
        assert_eq!(s.pending_requests(), 3);
        for h in &doomed {
            h.cancel();
        }
        s.tick(|_| {});
        assert_eq!(
            s.pending_requests(),
            0,
            "cancelled entries must leave the queue (and drop their \
             engines) even though the head is still decoding"
        );
        let _ = head;
        let outputs = s.run();
        assert_eq!(outputs.len(), 4);
        assert!(outputs[1..]
            .iter()
            .all(|o| o.finish == FinishReason::Cancelled));
        assert_eq!(outputs[0].tokens.len(), 4);
    }

    #[test]
    fn warm_prefix_resubmission_skips_prefill_and_reuses_blocks() {
        let m = model();
        let n_layers = m.config().n_layers;
        // Prompt of 10 tokens at 4 per block: the densely prefilled region
        // is 9 tokens, so 2 full blocks (8 tokens) are sharable.
        let prompt: Vec<u32> = (1..=10).collect();
        let req = GenerateRequest::new(&prompt).max_new(4);
        let solo = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: usize::MAX,
            ..SchedulerConfig::default()
        });
        s.submit(dense(&m), &req).unwrap();
        while s.tick(|_| {}) > 0 {}
        let cold = s.take_finished();
        assert_eq!(cold[0].tokens, solo);
        assert_eq!(cold[0].prefill_skipped_tokens, 0, "first run is cold");
        let created_after_cold = s.kv_pool().blocks_created();
        let stats = s.prefix_stats();
        assert_eq!(stats.published_blocks, 2 * n_layers);
        assert_eq!(stats.retained_blocks, 2 * n_layers);
        assert_eq!(
            stats.unreferenced_blocks, stats.retained_blocks,
            "publisher retired, the index is the sole referrer"
        );
        assert_eq!(stats.attached_requests, 0);

        s.submit(dense(&m), &req).unwrap();
        while s.tick(|_| {}) > 0 {}
        let warm = s.take_finished();
        assert_eq!(warm[0].tokens, solo, "warm decode is bit-identical");
        assert_eq!(
            warm[0].prefill_skipped_tokens, 8,
            "shared full blocks × block_tokens"
        );
        let stats = s.prefix_stats();
        assert_eq!(stats.attached_requests, 1);
        assert_eq!(stats.skipped_tokens, 8);
        assert_eq!(
            s.kv_pool().blocks_created(),
            created_after_cold,
            "the warm run allocated nothing beyond recycled free blocks"
        );
    }

    #[test]
    fn prefix_cache_disabled_never_attaches_or_retains() {
        let m = model();
        let prompt: Vec<u32> = (1..=10).collect();
        let req = GenerateRequest::new(&prompt).max_new(3);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: usize::MAX,
            prefix_cache: false,
            prefix_retain_blocks: 0,
        });
        for _ in 0..2 {
            s.submit(dense(&m), &req).unwrap();
            while s.tick(|_| {}) > 0 {}
        }
        let outputs = s.take_finished();
        assert!(outputs.iter().all(|o| o.prefill_skipped_tokens == 0));
        assert_eq!(s.prefix_stats(), PrefixCacheStats::default());
        assert_eq!(s.kv_pool().blocks_in_use(), 0, "nothing retained");
    }

    #[test]
    fn prefix_retention_cap_evicts_unreferenced_lru_entries() {
        let m = model();
        let n_layers = m.config().n_layers;
        // Each distinct 6-token prompt publishes one full block per layer.
        let cap = n_layers; // room for exactly one retained prefix
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            block_tokens: 4,
            kv_block_budget: usize::MAX,
            prefix_cache: true,
            prefix_retain_blocks: cap,
        });
        for start in [10u32, 25, 40] {
            let prompt: Vec<u32> = (start..start + 6).collect();
            s.submit(dense(&m), &GenerateRequest::new(&prompt).max_new(2))
                .unwrap();
            while s.tick(|_| {}) > 0 {}
        }
        let stats = s.prefix_stats();
        assert!(
            stats.unreferenced_blocks <= cap,
            "cap {} exceeded: {} unreferenced blocks retained",
            cap,
            stats.unreferenced_blocks
        );
        assert!(stats.evicted_blocks >= n_layers, "older prefixes evicted");
        // The most recent prefix is the survivor: resubmitting it hits.
        let prompt: Vec<u32> = (40u32..46).collect();
        s.submit(dense(&m), &GenerateRequest::new(&prompt).max_new(2))
            .unwrap();
        while s.tick(|_| {}) > 0 {}
        let out = s.take_finished();
        assert_eq!(out.last().unwrap().prefill_skipped_tokens, 4);
    }

    #[test]
    fn budget_pressure_evicts_warm_cache_to_admit_new_requests() {
        let m = model();
        let n_layers = m.config().n_layers; // tiny(): 2
                                            // Each request: 5-token prompt + max_new 3 = 8 tokens = 2 blocks
                                            // per layer gross; 1 full block per layer is sharable.
        let gross = n_layers * 2;
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            kv_block_budget: gross, // exactly one cold request fits
            prefix_cache: true,
            prefix_retain_blocks: usize::MAX, // only budget pressure evicts
        });
        s.submit(
            dense(&m),
            &GenerateRequest::new(&[1, 2, 3, 4, 5]).max_new(3),
        )
        .unwrap();
        while s.tick(|_| {}) > 0 {}
        assert_eq!(s.prefix_stats().retained_blocks, n_layers);
        // A *different* prompt needs the whole budget: the warm cache must
        // be evicted to admit it rather than blocking the queue forever.
        s.submit(
            dense(&m),
            &GenerateRequest::new(&[9, 8, 7, 6, 5]).max_new(3),
        )
        .unwrap();
        let mut ticks = 0;
        while s.tick(|_| {}) > 0 {
            ticks += 1;
            assert!(ticks < 64, "warm retention must not starve admission");
        }
        let outputs = s.take_finished();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[1].tokens.len(), 3);
        assert!(s.prefix_stats().evicted_blocks >= n_layers);
    }

    #[test]
    fn request_handles_cancel_across_threads() {
        // The serving contract: connection threads hold clones of the
        // handle and cancel without touching the scheduler thread.
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<RequestHandle>();

        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        let handle = s
            .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(64))
            .unwrap();
        for _ in 0..4 {
            s.tick(|_| {});
        }
        let remote = handle.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("cancelling thread");
        assert!(handle.is_cancelled());
        let outputs = s.run();
        assert_eq!(outputs[0].finish, FinishReason::Cancelled);
        assert!(outputs[0].tokens.len() < 64, "stopped well short of budget");
    }

    #[test]
    fn expired_mid_stream_requests_keep_partial_tokens_and_free_blocks() {
        let m = model();
        let req = GenerateRequest::new(&[1, 2]).max_new(64);
        let solo = solo_tokens(&m, &req);
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 2,
            block_tokens: 4,
            ..SchedulerConfig::default()
        });
        let handle = s.submit(dense(&m), &req).unwrap();
        let kv = s.kv_pool().clone();
        for _ in 0..6 {
            s.tick(|_| {});
        }
        handle.expire();
        assert!(handle.is_expired());
        let outputs = s.run();
        assert_eq!(outputs[0].finish, FinishReason::DeadlineExceeded);
        assert!(!outputs[0].tokens.is_empty(), "partial output preserved");
        assert_eq!(outputs[0].tokens[..], solo[..outputs[0].tokens.len()]);
        assert_eq!(kv.blocks_in_use(), 0, "blocks reclaimed on expiry");
    }

    #[test]
    fn expired_queued_requests_retire_without_decoding() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig {
            max_slots: 1,
            ..SchedulerConfig::default()
        });
        s.submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(3))
            .unwrap();
        let queued = s
            .submit(dense(&m), &GenerateRequest::new(&[4]).max_new(3))
            .unwrap();
        queued.expire();
        let outputs = s.run();
        assert_eq!(outputs[queued.id()].finish, FinishReason::DeadlineExceeded);
        assert!(outputs[queued.id()].tokens.is_empty());
    }

    #[test]
    fn first_raised_signal_wins() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        let h = s
            .submit(dense(&m), &GenerateRequest::new(&[1]).max_new(8))
            .unwrap();
        h.cancel();
        h.expire(); // late expiry must not overwrite the cancellation
        assert!(h.is_cancelled() && !h.is_expired());
        assert_eq!(s.run()[0].finish, FinishReason::Cancelled);

        let mut s = Scheduler::new(SchedulerConfig::default());
        let h = s
            .submit(dense(&m), &GenerateRequest::new(&[1]).max_new(8))
            .unwrap();
        h.expire();
        h.cancel(); // and vice versa
        assert!(h.is_expired() && !h.is_cancelled());
        assert_eq!(s.run()[0].finish, FinishReason::DeadlineExceeded);
    }

    #[test]
    fn take_finished_drains_incrementally() {
        let m = model();
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.submit(dense(&m), &GenerateRequest::new(&[1]).max_new(1))
            .unwrap();
        s.submit(dense(&m), &GenerateRequest::new(&[2, 3]).max_new(6))
            .unwrap();
        while s.take_finished().is_empty() {
            s.tick(|_| {});
        }
        assert!(s.unfinished_requests() > 0, "long request still going");
        while s.tick(|_| {}) > 0 {}
        assert_eq!(s.take_finished().len(), 1);
        assert!(s.take_finished().is_empty(), "drained");
    }
}
