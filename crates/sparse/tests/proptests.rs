//! Property-style tests for the sparse execution crate, driven by seeded
//! pseudo-random sweeps (offline replacement for the `proptest` crate).

use sparseinfer_model::{Activation, GatedMlp};
use sparseinfer_predictor::SkipMask;
use sparseinfer_sparse::gemv::{sparse_down_proj, sparse_gemv};
use sparseinfer_sparse::mlp::{sparse_mlp_forward, MlpOptions};
use sparseinfer_sparse::OpCounter;
use sparseinfer_tensor::gemv::{gemv, gemv_transposed};
use sparseinfer_tensor::{Matrix, Prng, Vector};

fn random_mlp(seed: u64, k: usize, d: usize) -> GatedMlp {
    let mut rng = Prng::seed(seed);
    let mut m = |mean: f64| Matrix::from_fn(k, d, |_, _| rng.normal(mean, 0.5) as f32);
    GatedMlp::new(m(-0.05), m(0.0), m(0.0), Activation::Relu)
}

/// Sparse GEMV equals dense GEMV with skipped outputs forced to zero.
#[test]
fn sparse_gemv_equals_masked_dense() {
    for seed in 0..48u64 {
        let mut rng = Prng::seed(seed);
        let k = 1 + rng.below(23);
        let d = 1 + rng.below(47);
        let w = Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let x = Vector::from_fn(d, |_| rng.normal(0.0, 1.0) as f32);
        let mut mrng = Prng::seed(seed ^ 0x1111);
        let mask = SkipMask::from_fn(k, |_| mrng.flip(0.5));

        let mut ops = OpCounter::default();
        let sparse = sparse_gemv(&w, &x, &mask, &mut ops);
        let dense = gemv(&w, &x);
        for r in 0..k {
            if mask.is_skipped(r) {
                assert_eq!(sparse[r], 0.0, "seed {seed} row {r}");
            } else {
                assert!((sparse[r] - dense[r]).abs() < 1e-4, "seed {seed} row {r}");
            }
        }
        // Work accounting matches the mask exactly.
        assert_eq!(ops.rows_skipped as usize, mask.skip_count());
        assert_eq!(ops.macs, ((k - mask.skip_count()) * d) as u64);
    }
}

/// Down projection under a mask equals the transposed GEMV on an h3 whose
/// masked entries are zeroed.
#[test]
fn down_proj_equals_zeroed_transposed_gemv() {
    for seed in 0..48u64 {
        let mut rng = Prng::seed(seed ^ 0x2222);
        let k = 1 + rng.below(23);
        let d = 1 + rng.below(31);
        let w = Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let h3 = Vector::from_fn(k, |_| rng.normal(0.0, 1.0) as f32);
        let mut mrng = Prng::seed(seed ^ 0x3333);
        let mask = SkipMask::from_fn(k, |_| mrng.flip(0.4));

        let mut ops = OpCounter::default();
        let masked = sparse_down_proj(&w, &h3, &mask, &mut ops);

        let mut zeroed = h3.clone();
        for r in mask.skipped_rows() {
            zeroed[r] = 0.0;
        }
        let reference = gemv_transposed(&w, &zeroed);
        for (a, b) in masked.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-3, "seed {seed}: {a} vs {b}");
        }
    }
}

/// Skipping rows whose gate output is truly zero is lossless: for any mask
/// that only contains true zeros, the sparse MLP equals dense.
#[test]
fn true_zero_masks_are_lossless() {
    for seed in 0..32u64 {
        let mut dims = Prng::seed(seed ^ 0xD1D5);
        let k = 8 + dims.below(40);
        let d = 4 + dims.below(20);
        let mlp = random_mlp(seed, k, d);
        let mut rng = Prng::seed(seed ^ 0xF00D);
        let x = Vector::from_fn(d, |_| rng.normal(0.2, 1.0) as f32);

        let z = mlp.gate_preactivations(&x);
        let mask = SkipMask::from_fn(k, |r| z[r] <= 0.0);
        let mut ops = OpCounter::default();
        let sparse = sparse_mlp_forward(&mlp, &x, &mask, MlpOptions::default(), &mut ops);
        let dense = mlp.forward(&x);
        for (a, b) in sparse.output.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-4, "seed {seed}: {a} vs {b}");
        }
    }
}

/// Kernel fusion and actual sparsity never change the numeric output, for
/// any predicted mask.
#[test]
fn execution_options_are_numerically_neutral() {
    for seed in 0..32u64 {
        let k = 32;
        let d = 16;
        let mlp = random_mlp(seed, k, d);
        let mut rng = Prng::seed(seed ^ 0xBEEF);
        let x = Vector::from_fn(d, |_| rng.normal(0.2, 1.0) as f32);
        let mut mrng = Prng::seed(seed ^ 0x4444);
        let mask = SkipMask::from_fn(k, |_| mrng.flip(0.3));

        let mut outputs = Vec::new();
        for (kf, asp) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut ops = OpCounter::default();
            let out = sparse_mlp_forward(
                &mlp,
                &x,
                &mask,
                MlpOptions {
                    kernel_fusion: kf,
                    actual_sparsity: asp,
                },
                &mut ops,
            );
            outputs.push(out.output);
        }
        for w in outputs.windows(2) {
            assert_eq!(&w[0], &w[1], "seed {seed}");
        }
    }
}

/// Effective sparsity is always >= predicted sparsity, and both lie in
/// [0, 1].
#[test]
fn sparsity_bounds_hold() {
    for seed in 0..32u64 {
        let k = 40;
        let d = 16;
        let mlp = random_mlp(seed, k, d);
        let mut rng = Prng::seed(seed ^ 0xCAFE);
        let x = Vector::from_fn(d, |_| rng.normal(0.2, 1.0) as f32);
        let mut mrng = Prng::seed(seed ^ 0x5555);
        let p = mrng.uniform();
        let mask = SkipMask::from_fn(k, |_| mrng.flip(p));

        let mut ops = OpCounter::default();
        let out = sparse_mlp_forward(&mlp, &x, &mask, MlpOptions::default(), &mut ops);
        assert!(
            out.effective_sparsity >= out.predicted_sparsity - 1e-12,
            "seed {seed}"
        );
        assert!((0.0..=1.0).contains(&out.predicted_sparsity));
        assert!((0.0..=1.0).contains(&out.effective_sparsity));
    }
}

/// Op counters merge additively.
#[test]
fn op_counter_merge_is_additive() {
    let mut rng = Prng::seed(25);
    for _ in 0..128 {
        let a_macs = rng.below(1_000_000) as u64;
        let b_macs = rng.below(1_000_000) as u64;
        let a_bytes = rng.below(1_000_000) as u64;
        let b_bytes = rng.below(1_000_000) as u64;
        let mut a = OpCounter {
            macs: a_macs,
            weight_bytes_loaded: a_bytes,
            ..Default::default()
        };
        let b = OpCounter {
            macs: b_macs,
            weight_bytes_loaded: b_bytes,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.macs, a_macs + b_macs);
        assert_eq!(a.weight_bytes_loaded, a_bytes + b_bytes);
    }
}
