//! The gate-based MLP block (paper §III).
//!
//! `MLP(X) = (σ(X·W_gate) ⊙ (X·W_up)) · W_downᵀ` with the four steps the
//! paper enumerates: gate computation, input processing, gate application and
//! output generation. This module holds the *dense* reference implementation
//! plus accessors the predictor and sparse engine build on. Weight layout
//! follows the paper's skip-friendly convention: `W_gate` and `W_up` are
//! stored `k×d` (one output element per row), and `W_down` is stored
//! transposed (`k×d` as well) at load time so output sparsity skips rows
//! (§IV-B4).

use sparseinfer_tensor::{gemv::gemv, gemv::gemv_transposed, Matrix, Vector};

use crate::activation::Activation;

/// One gated MLP block with skip-friendly weight layout.
///
/// # Example
///
/// ```
/// use sparseinfer_model::{GatedMlp, Activation};
/// use sparseinfer_tensor::{Matrix, Vector};
///
/// let mlp = GatedMlp::new(
///     Matrix::zeros(6, 4), // W_gate, k×d
///     Matrix::zeros(6, 4), // W_up, k×d
///     Matrix::zeros(6, 4), // W_down already transposed, k×d
///     Activation::Relu,
/// );
/// let y = mlp.forward(&Vector::zeros(4));
/// assert_eq!(y.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GatedMlp {
    w_gate: Matrix,
    w_up: Matrix,
    /// `W_down` stored transposed: row `i` holds the contribution weights of
    /// intermediate element `i` to the `d` outputs.
    w_down_t: Matrix,
    activation: Activation,
}

impl GatedMlp {
    /// Builds a block from weights already in skip-friendly layout
    /// (`w_gate`, `w_up`, `w_down_t` all `k×d`).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn new(w_gate: Matrix, w_up: Matrix, w_down_t: Matrix, activation: Activation) -> Self {
        assert_eq!(w_gate.rows(), w_up.rows(), "gate/up row mismatch");
        assert_eq!(w_gate.cols(), w_up.cols(), "gate/up col mismatch");
        assert_eq!(w_gate.rows(), w_down_t.rows(), "gate/down row mismatch");
        assert_eq!(w_gate.cols(), w_down_t.cols(), "gate/down col mismatch");
        Self {
            w_gate,
            w_up,
            w_down_t,
            activation,
        }
    }

    /// Builds a block from a `d×k` down-projection, transposing it at load
    /// time exactly as the paper's model loader does.
    pub fn with_untransposed_down(
        w_gate: Matrix,
        w_up: Matrix,
        w_down: Matrix,
        activation: Activation,
    ) -> Self {
        Self::new(w_gate, w_up, w_down.transposed(), activation)
    }

    /// Model dimension `d`.
    pub fn hidden_dim(&self) -> usize {
        self.w_gate.cols()
    }

    /// Intermediate dimension `k`.
    pub fn mlp_dim(&self) -> usize {
        self.w_gate.rows()
    }

    /// The gate projection matrix (`k×d`).
    pub fn w_gate(&self) -> &Matrix {
        &self.w_gate
    }

    /// The up projection matrix (`k×d`).
    pub fn w_up(&self) -> &Matrix {
        &self.w_up
    }

    /// The transposed down projection (`k×d`).
    pub fn w_down_t(&self) -> &Matrix {
        &self.w_down_t
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Replaces the activation (used by the ReLUfication demo).
    pub fn set_activation(&mut self, activation: Activation) {
        self.activation = activation;
    }

    /// Gate pre-activations `X · W_gate` (length `k`) — the vector whose
    /// signs the SparseInfer predictor approximates.
    pub fn gate_preactivations(&self, x: &Vector) -> Vector {
        gemv(&self.w_gate, x)
    }

    /// Dense reference forward pass (steps 1–4 of §III).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.hidden_dim()`.
    pub fn forward(&self, x: &Vector) -> Vector {
        let mut h1 = gemv(&self.w_gate, x); // step 1: gate computation
        self.activation.apply_slice(h1.as_mut_slice());
        let h2 = gemv(&self.w_up, x); // step 2: input processing
        let h3 = h1.hadamard(&h2).expect("h1/h2 same length"); // step 3
        gemv_transposed(&self.w_down_t, &h3) // step 4: output generation
    }

    /// Forward pass that also returns the intermediate `h1` (post-activation
    /// gate values), used by trace capture and the oracle predictor.
    pub fn forward_with_gate(&self, x: &Vector) -> (Vector, Vector) {
        let mut h1 = gemv(&self.w_gate, x);
        self.activation.apply_slice(h1.as_mut_slice());
        let h2 = gemv(&self.w_up, x);
        let h3 = h1.hadamard(&h2).expect("h1/h2 same length");
        (gemv_transposed(&self.w_down_t, &h3), h1)
    }

    /// Measured activation sparsity of the block for input `x` (fraction of
    /// exact zeros in `h1`).
    pub fn activation_sparsity(&self, x: &Vector) -> f64 {
        let (_, h1) = self.forward_with_gate(x);
        h1.sparsity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_tensor::Prng;

    fn random_mlp(seed: u64, k: usize, d: usize, activation: Activation) -> GatedMlp {
        let mut rng = Prng::seed(seed);
        let m = |rng: &mut Prng| Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 0.3) as f32);
        GatedMlp::new(m(&mut rng), m(&mut rng), m(&mut rng), activation)
    }

    #[test]
    fn forward_matches_manual_composition() {
        let mlp = random_mlp(1, 12, 8, Activation::Relu);
        let mut rng = Prng::seed(2);
        let x = Vector::from_fn(8, |_| rng.normal(0.0, 1.0) as f32);

        let z = mlp.gate_preactivations(&x);
        let mut h1 = z.clone();
        Activation::Relu.apply_slice(h1.as_mut_slice());
        let h2 = gemv(mlp.w_up(), &x);
        let h3 = h1.hadamard(&h2).unwrap();
        let expected = gemv_transposed(mlp.w_down_t(), &h3);

        let actual = mlp.forward(&x);
        for (a, b) in actual.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_mlp_has_exact_zero_gates() {
        let mlp = random_mlp(3, 64, 32, Activation::Relu);
        let mut rng = Prng::seed(4);
        let x = Vector::from_fn(32, |_| rng.normal(0.0, 1.0) as f32);
        let (_, h1) = mlp.forward_with_gate(&x);
        // Zero-mean random weights give ~50% sparsity.
        let s = h1.sparsity();
        assert!(s > 0.25 && s < 0.75, "sparsity {s}");
    }

    #[test]
    fn silu_mlp_has_negligible_sparsity() {
        let mlp = random_mlp(5, 64, 32, Activation::Silu);
        let mut rng = Prng::seed(6);
        let x = Vector::from_fn(32, |_| rng.normal(0.0, 1.0) as f32);
        assert!(mlp.activation_sparsity(&x) < 0.05);
    }

    #[test]
    fn relufication_changes_only_activation() {
        let mut mlp = random_mlp(7, 16, 8, Activation::Silu);
        let x = Vector::from_fn(8, |i| (i as f32 - 3.5) / 2.0);
        let silu_out = mlp.forward(&x);
        mlp.set_activation(mlp.activation().relufy());
        assert_eq!(mlp.activation(), Activation::Relu);
        let relu_out = mlp.forward(&x);
        // Outputs differ but dimensions agree.
        assert_eq!(silu_out.len(), relu_out.len());
    }

    #[test]
    fn untransposed_constructor_matches_transposed() {
        let mut rng = Prng::seed(9);
        let k = 10;
        let d = 6;
        let w_gate = Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let w_up = Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let w_down = Matrix::from_fn(d, k, |_, _| rng.normal(0.0, 1.0) as f32);
        let a = GatedMlp::with_untransposed_down(
            w_gate.clone(),
            w_up.clone(),
            w_down.clone(),
            Activation::Relu,
        );
        let b = GatedMlp::new(w_gate, w_up, w_down.transposed(), Activation::Relu);
        let x = Vector::from_fn(d, |i| i as f32 * 0.1 - 0.2);
        for (u, v) in a.forward(&x).iter().zip(b.forward(&x).iter()) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn shape_mismatch_panics() {
        let _ = GatedMlp::new(
            Matrix::zeros(4, 2),
            Matrix::zeros(5, 2),
            Matrix::zeros(4, 2),
            Activation::Relu,
        );
    }
}
