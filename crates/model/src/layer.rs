//! One decoder layer: norm → attention → residual, norm → MLP → residual.

use sparseinfer_tensor::{ThreadPool, Vector, Workspace};

use crate::attention::{Attention, KvCache};
use crate::mlp::GatedMlp;
use crate::norm::RmsNorm;

/// A pre-norm decoder layer (Llama topology).
#[derive(Debug, Clone)]
pub struct DecoderLayer {
    attn_norm: RmsNorm,
    attn: Attention,
    mlp_norm: RmsNorm,
    mlp: GatedMlp,
}

impl DecoderLayer {
    /// Assembles a layer.
    ///
    /// # Panics
    ///
    /// Panics if the norms, attention and MLP disagree on the hidden
    /// dimension.
    pub fn new(attn_norm: RmsNorm, attn: Attention, mlp_norm: RmsNorm, mlp: GatedMlp) -> Self {
        assert_eq!(attn_norm.dim(), attn.hidden_dim(), "attn norm dim");
        assert_eq!(mlp_norm.dim(), mlp.hidden_dim(), "mlp norm dim");
        assert_eq!(attn.hidden_dim(), mlp.hidden_dim(), "attn/mlp dim");
        Self {
            attn_norm,
            attn,
            mlp_norm,
            mlp,
        }
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.mlp.hidden_dim()
    }

    /// The MLP block (the predictor and sparse engine operate on this).
    pub fn mlp(&self) -> &GatedMlp {
        &self.mlp
    }

    /// Mutable access to the MLP block (ReLUfication demos).
    pub fn mlp_mut(&mut self) -> &mut GatedMlp {
        &mut self.mlp
    }

    /// The pre-MLP norm. Exposed so sparse engines can reproduce the exact
    /// MLP input (`X = mlp_norm(h)`) that the dense path sees.
    pub fn mlp_norm(&self) -> &RmsNorm {
        &self.mlp_norm
    }

    /// Runs attention and its residual, returning the hidden state *before*
    /// the MLP sub-block. Split out so sparse engines can substitute their
    /// own MLP execution while sharing the attention path. Thin wrapper
    /// over [`attention_half_ws`](Self::attention_half_ws).
    pub fn attention_half(&self, h: &Vector, position: usize, cache: &mut KvCache) -> Vector {
        let mut ws = Workspace::new();
        self.attention_half_ws(h, position, cache, &ThreadPool::single(), &mut ws)
    }

    /// Workspace variant of [`attention_half`](Self::attention_half): the
    /// returned vector and every intermediate come from `ws` (give the
    /// result back to `ws` when done). Bit-identical to the wrapper.
    pub fn attention_half_ws(
        &self,
        h: &Vector,
        position: usize,
        cache: &mut KvCache,
        pool: &ThreadPool,
        ws: &mut Workspace,
    ) -> Vector {
        let mut normed = ws.take(h.len());
        self.attn_norm.forward_into(h, &mut normed);
        let mut out = self.attn.forward_ws(&normed, position, cache, pool, ws);
        ws.give(normed);
        // Residual: x + y is commutative bitwise, so accumulating the
        // residual into the attention output equals the seed's h + attn.
        out.add_assign(h);
        out
    }

    /// Dense forward pass through the full layer.
    pub fn forward(&self, h: &Vector, position: usize, cache: &mut KvCache) -> Vector {
        let mid = self.attention_half(h, position, cache);
        let x = self.mlp_norm.forward(&mid);
        let mlp_out = self.mlp.forward(&x);
        let mut out = mid;
        out.add_assign(&mlp_out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use sparseinfer_tensor::{Matrix, Prng};

    fn layer(seed: u64, d: usize, k: usize) -> DecoderLayer {
        let mut rng = Prng::seed(seed);
        let mut sq = |s: f64| Matrix::from_fn(d, d, |_, _| rng.normal(0.0, s) as f32);
        let attn = Attention::new(sq(0.1), sq(0.1), sq(0.1), sq(0.1), 2);
        let mut rect = |s: f64| Matrix::from_fn(k, d, |_, _| rng.normal(0.0, s) as f32);
        let mlp = GatedMlp::new(rect(0.3), rect(0.3), rect(0.3), Activation::Relu);
        DecoderLayer::new(RmsNorm::unit(d), attn, RmsNorm::unit(d), mlp)
    }

    #[test]
    fn forward_is_attention_half_plus_mlp() {
        let l = layer(1, 16, 48);
        let h = Vector::from_fn(16, |i| (i as f32 * 0.31).sin());

        let mut c1 = KvCache::new();
        let full = l.forward(&h, 0, &mut c1);

        let mut c2 = KvCache::new();
        let mid = l.attention_half(&h, 0, &mut c2);
        let x = l.mlp_norm().forward(&mid);
        let mut manual = mid.clone();
        manual.add_assign(&l.mlp().forward(&x));

        for (a, b) in full.iter().zip(manual.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn residual_keeps_input_information() {
        let l = layer(2, 16, 48);
        let h = Vector::from_fn(16, |i| i as f32);
        let mut cache = KvCache::new();
        let out = l.forward(&h, 0, &mut cache);
        // Residual stream must correlate with the input, not replace it.
        let dot = out.dot(&h).unwrap();
        assert!(dot > 0.0);
    }

    #[test]
    #[should_panic(expected = "attn norm dim")]
    fn dimension_mismatch_panics() {
        let l = layer(3, 16, 48);
        let _ = DecoderLayer::new(
            RmsNorm::unit(8),
            l.attn.clone(),
            RmsNorm::unit(16),
            l.mlp.clone(),
        );
    }
}
