//! Model configurations: paper dimensions and scaled simulation dimensions.

use crate::activation::Activation;

/// Architecture hyper-parameters of a gated-MLP decoder model.
///
/// Two families of presets exist:
///
/// * `prosparse_13b_paper` / `prosparse_7b_paper` — the exact dimensions of
///   the models the paper evaluates. These are **only** used analytically
///   (operation counts, memory footprints, GPU cost model); materializing the
///   weights would need tens of GB.
/// * `sim_13b` / `sim_7b` / `tiny` — scaled-down models with the same layer
///   count and the same `k/d` aspect ratio, used for functional runs
///   (decoding, predictor precision/recall, accuracy sweeps).
///
/// # Example
///
/// ```
/// use sparseinfer_model::ModelConfig;
///
/// let paper = ModelConfig::prosparse_13b_paper();
/// assert_eq!(paper.hidden_dim, 5120);
/// assert_eq!(paper.mlp_dim, 13824);
/// assert_eq!(paper.n_layers, 40);
/// // 3·d·k ≈ 2.123e8 MACs per MLP block (paper Table I).
/// assert_eq!(paper.mlp_macs_per_block(), 3 * 5120 * 13824);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name used in experiment printouts.
    pub name: String,
    /// Model (hidden-state) dimension `d`.
    pub hidden_dim: usize,
    /// MLP intermediate dimension `k` (rows of `W_gate`/`W_up`).
    pub mlp_dim: usize,
    /// Number of decoder layers.
    pub n_layers: usize,
    /// Number of attention heads (`hidden_dim` must be divisible by this).
    pub n_heads: usize,
    /// Vocabulary size of the output head.
    pub vocab_size: usize,
    /// Maximum sequence length the KV cache is sized for.
    pub max_seq_len: usize,
    /// MLP activation function.
    pub activation: Activation,
    /// Target mean activation sparsity the synthetic weights are calibrated
    /// to (ProSparse reports ≈ 0.9; Table I uses 0.92 for the op counts).
    pub target_sparsity: f64,
}

impl ModelConfig {
    /// ProSparse-Llama2-13B dimensions as reported in the paper (§V-A2:
    /// d = 5120, k = 13824, 40 blocks). Analytic use only.
    pub fn prosparse_13b_paper() -> Self {
        Self {
            name: "ProSparse-Llama2-13B".into(),
            hidden_dim: 5120,
            mlp_dim: 13824,
            n_layers: 40,
            n_heads: 40,
            vocab_size: 32000,
            max_seq_len: 4096,
            activation: Activation::Relu,
            target_sparsity: 0.92,
        }
    }

    /// ProSparse-Llama2-7B dimensions (Llama-2-7B: d = 4096, k = 11008,
    /// 32 blocks). Analytic use only.
    pub fn prosparse_7b_paper() -> Self {
        Self {
            name: "ProSparse-Llama2-7B".into(),
            hidden_dim: 4096,
            mlp_dim: 11008,
            n_layers: 32,
            n_heads: 32,
            vocab_size: 32000,
            max_seq_len: 4096,
            activation: Activation::Relu,
            target_sparsity: 0.92,
        }
    }

    /// Scaled 13B simulacrum: same layer count and `k/d = 2.7` aspect ratio,
    /// runnable on a CPU. `d` stays a multiple of 32 so sign packing has no
    /// ragged tail, and is large enough (448) that each integer-alpha step
    /// of the device decision rule (`n·100 > (d−n)·alpha`) moves the skip
    /// threshold by at least one count — without this, the paper's
    /// alpha ∈ {1.00..1.03} sweep would be quantized away at small scale.
    pub fn sim_13b() -> Self {
        Self {
            name: "ProSparse-13B-sim".into(),
            hidden_dim: 448,
            mlp_dim: 1210,
            n_layers: 40,
            n_heads: 14,
            vocab_size: 512,
            max_seq_len: 512,
            activation: Activation::Relu,
            target_sparsity: 0.92,
        }
    }

    /// Scaled 7B simulacrum (32 layers, `k/d = 2.6875`, alpha-resolving
    /// hidden dimension like [`ModelConfig::sim_13b`]).
    pub fn sim_7b() -> Self {
        Self {
            name: "ProSparse-7B-sim".into(),
            hidden_dim: 416,
            mlp_dim: 1118,
            n_layers: 32,
            n_heads: 13,
            vocab_size: 512,
            max_seq_len: 512,
            activation: Activation::Relu,
            target_sparsity: 0.92,
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            hidden_dim: 32,
            mlp_dim: 96,
            n_layers: 2,
            n_heads: 2,
            vocab_size: 64,
            max_seq_len: 64,
            activation: Activation::Relu,
            target_sparsity: 0.9,
        }
    }

    /// Head dimension (`hidden_dim / n_heads`).
    ///
    /// # Panics
    ///
    /// Panics if `hidden_dim` is not divisible by `n_heads`.
    pub fn head_dim(&self) -> usize {
        assert_eq!(
            self.hidden_dim % self.n_heads,
            0,
            "hidden_dim must be divisible by n_heads"
        );
        self.hidden_dim / self.n_heads
    }

    /// MAC count of one dense gated-MLP block: `3 · d · k` (gate, up, down
    /// projections). This is the "MLP Block" column of Table I.
    pub fn mlp_macs_per_block(&self) -> u64 {
        3 * self.hidden_dim as u64 * self.mlp_dim as u64
    }

    /// MAC count of one dense MLP block at a given activation sparsity
    /// (`3·d·k·(1−s)`), the sparse engines' row of Table I.
    pub fn sparse_mlp_macs_per_block(&self, sparsity: f64) -> u64 {
        (self.mlp_macs_per_block() as f64 * (1.0 - sparsity)).round() as u64
    }

    /// XOR+popcount operation count of the SparseInfer predictor per block:
    /// `d · k / 32` 32-bit operations (Table I: 2.211e6 for 13B).
    pub fn signbit_predictor_ops_per_block(&self) -> u64 {
        (self.hidden_dim as u64 * self.mlp_dim as u64) / 32
    }

    /// FP16 MAC count of a DejaVu-style rank-`r` predictor per block:
    /// `d·r + r·k` (Table I: 1.940e7 for 13B at rank 1024).
    pub fn dejavu_predictor_ops_per_block(&self, rank: usize) -> u64 {
        (self.hidden_dim as u64 + self.mlp_dim as u64) * rank as u64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden_dim == 0 || self.mlp_dim == 0 || self.n_layers == 0 {
            return Err("dimensions must be nonzero".into());
        }
        if !self.hidden_dim.is_multiple_of(self.n_heads) {
            return Err(format!(
                "hidden_dim {} not divisible by n_heads {}",
                self.hidden_dim, self.n_heads
            ));
        }
        if !self.hidden_dim.is_multiple_of(32) {
            return Err(format!(
                "hidden_dim {} must be a multiple of 32 for sign packing",
                self.hidden_dim
            ));
        }
        if !(0.0..1.0).contains(&self.target_sparsity) {
            return Err(format!(
                "target_sparsity {} out of [0,1)",
                self.target_sparsity
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_13b_op_counts_match_table1() {
        let cfg = ModelConfig::prosparse_13b_paper();
        // Dense MLP: 2.123e8.
        assert_eq!(cfg.mlp_macs_per_block(), 212_336_640);
        // SparseInfer predictor: 2.211e6.
        assert_eq!(cfg.signbit_predictor_ops_per_block(), 2_211_840);
        // PowerInfer/DejaVu predictor at rank 1024: 1.940e7.
        assert_eq!(cfg.dejavu_predictor_ops_per_block(1024), 19_398_656);
        // Sparse MLP at 92%: 1.699e7.
        let sparse = cfg.sparse_mlp_macs_per_block(0.92);
        assert!((sparse as f64 - 1.699e7).abs() / 1.699e7 < 0.01, "{sparse}");
    }

    #[test]
    fn all_presets_validate() {
        for cfg in [
            ModelConfig::prosparse_13b_paper(),
            ModelConfig::prosparse_7b_paper(),
            ModelConfig::sim_13b(),
            ModelConfig::sim_7b(),
            ModelConfig::tiny(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn sim_models_preserve_aspect_ratio() {
        let paper = ModelConfig::prosparse_13b_paper();
        let sim = ModelConfig::sim_13b();
        let paper_ratio = paper.mlp_dim as f64 / paper.hidden_dim as f64;
        let sim_ratio = sim.mlp_dim as f64 / sim.hidden_dim as f64;
        assert!((paper_ratio - sim_ratio).abs() < 0.01);
        assert_eq!(paper.n_layers, sim.n_layers);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = ModelConfig::tiny();
        cfg.n_heads = 5;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::tiny();
        cfg.hidden_dim = 33;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::tiny();
        cfg.target_sparsity = 1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn head_dim_divides_evenly() {
        assert_eq!(ModelConfig::sim_13b().head_dim(), 32);
        assert_eq!(ModelConfig::sim_7b().head_dim(), 32);
    }

    #[test]
    fn sim_dims_resolve_every_alpha_step() {
        // Each alpha in {1.00, 1.01, 1.02, 1.03} must induce a distinct
        // integer skip threshold n* = min{n : n·100 > (d−n)·alpha}.
        for cfg in [ModelConfig::sim_13b(), ModelConfig::sim_7b()] {
            let d = cfg.hidden_dim as u64;
            let thresholds: Vec<u64> = [100u64, 101, 102, 103]
                .iter()
                .map(|alpha| (0..=d).find(|n| n * 100 > (d - n) * alpha).unwrap())
                .collect();
            for pair in thresholds.windows(2) {
                assert!(pair[0] < pair[1], "{}: thresholds {thresholds:?}", cfg.name);
            }
        }
    }
}
