//! Synthetic, sparsity-calibrated weight generation.
//!
//! This is the substitute for the ProSparse-Llama2 checkpoints (see
//! DESIGN.md §2). The generator produces weights whose *statistics* match
//! what the SparseInfer paper observes and relies on:
//!
//! 1. **Gaussian shapes** (Fig. 2): MLP inputs `X` and gate rows `W_gate,i`
//!    are approximately normal; their products are symmetric around zero.
//! 2. **Calibrated activation sparsity**: for each layer the distribution of
//!    gate-row means is solved in closed form so the expected fraction of
//!    negative pre-activations equals `target_sparsity` (~0.92, ProSparse's
//!    level).
//! 3. **Early-layer pathology** (Fig. 2 discussion, §IV-A): the first layers
//!    get a *narrow, near-zero* `X` distribution, which makes the sign-count
//!    predictor measurably less precise there — the effect the paper's
//!    per-layer `alpha > 1` compensates.
//!
//! # The calibration math
//!
//! Per layer, the pre-MLP norm shapes `X` so each element is approximately
//! `N(mu_x, sigma_x^2)`. A gate row `r` is drawn elementwise as
//! `N(nu_r / sqrt(d), 1/d)`, with the row-level parameter
//! `nu_r ~ N(-m, s_m^2)`. The pre-activation `z_r = X · W_gate,r` then has
//! `E[z] = sqrt(d)·mu_x·nu_r` and `Var[z] ≈ sigma_x² + mu_x²`, so with
//! `c = sqrt(d)·mu_x / sqrt(sigma_x² + mu_x²)`:
//!
//! ```text
//! P(z < 0)  =  E_nu[ Φ(-c·nu) ]  =  Φ( c·m / sqrt(1 + c²·s_m²) )
//! ```
//!
//! Solving for `m` given the target sparsity `s` and a per-layer row
//! z-score spread `q = c·s_m`: `m = Φ⁻¹(s) · sqrt(1 + q²) / c`. Borderline
//! rows (`nu ≈ 0`) are exactly the ones the sign-count predictor gets wrong;
//! the spread ramps from small (early layers, many borderline rows, lower
//! precision) to large (stabilized layers, >99% precision), reproducing the
//! paper's precision/recall structure.

use sparseinfer_tensor::stats::normal_quantile;
use sparseinfer_tensor::{Matrix, Prng, Vector};

use crate::attention::Attention;
use crate::config::ModelConfig;
use crate::layer::DecoderLayer;
use crate::mlp::GatedMlp;
use crate::model::Model;
use crate::norm::RmsNorm;

/// Tunable statistical profile of the generated weights.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorProfile {
    /// MLP-input mean in fully "stabilized" layers.
    pub x_mean_late: f64,
    /// MLP-input mean in the earliest layer (the near-zero pathology).
    pub x_mean_early: f64,
    /// MLP-input standard deviation (norm gain scale) in late layers.
    pub x_std_late: f64,
    /// MLP-input standard deviation in the earliest layer (narrow).
    pub x_std_early: f64,
    /// Fraction of depth over which the early→late ramp completes.
    pub ramp_fraction: f64,
    /// Spread of row z-scores (`s_m · c`) in the earliest layer. A small
    /// spread packs rows near the decision boundary, producing the paper's
    /// early-layer prediction errors.
    pub row_zscore_spread_early: f64,
    /// Spread of row z-scores in stabilized layers. A large spread makes
    /// rows decisively sparse or active, reproducing the paper's >99%
    /// late-layer precision.
    pub row_zscore_spread_late: f64,
}

impl Default for GeneratorProfile {
    fn default() -> Self {
        Self {
            x_mean_late: 0.65,
            x_mean_early: 0.045,
            x_std_late: 1.0,
            x_std_early: 0.6,
            ramp_fraction: 0.5,
            row_zscore_spread_early: 0.45,
            row_zscore_spread_late: 9.0,
        }
    }
}

impl GeneratorProfile {
    /// Linear ramp position of layer `l` of `n_layers` in `[0, 1]`.
    fn ramp(&self, l: usize, n_layers: usize) -> f64 {
        if n_layers <= 1 {
            return 1.0;
        }
        let t = l as f64 / (n_layers - 1) as f64;
        (t / self.ramp_fraction).min(1.0)
    }

    /// Target MLP-input mean for layer `l`.
    pub fn x_mean(&self, l: usize, n_layers: usize) -> f64 {
        let r = self.ramp(l, n_layers);
        self.x_mean_early + (self.x_mean_late - self.x_mean_early) * r
    }

    /// Target MLP-input standard deviation for layer `l`.
    pub fn x_std(&self, l: usize, n_layers: usize) -> f64 {
        let r = self.ramp(l, n_layers);
        self.x_std_early + (self.x_std_late - self.x_std_early) * r
    }

    /// Row z-score spread for layer `l`.
    pub fn row_zscore_spread(&self, l: usize, n_layers: usize) -> f64 {
        let r = self.ramp(l, n_layers);
        self.row_zscore_spread_early
            + (self.row_zscore_spread_late - self.row_zscore_spread_early) * r
    }
}

/// Builder that turns a [`ModelConfig`] plus a seed into a full [`Model`].
///
/// # Example
///
/// ```
/// use sparseinfer_model::{ModelConfig, generator::WeightGenerator};
///
/// let model = WeightGenerator::new(&ModelConfig::tiny(), 1).build();
/// assert_eq!(model.layers().len(), 2);
/// ```
#[derive(Debug)]
pub struct WeightGenerator {
    config: ModelConfig,
    profile: GeneratorProfile,
    seed: u64,
}

impl WeightGenerator {
    /// Creates a generator with the default profile.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ModelConfig::validate`].
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        config.validate().expect("invalid model config");
        Self {
            config: config.clone(),
            profile: GeneratorProfile::default(),
            seed,
        }
    }

    /// Overrides the statistical profile.
    pub fn with_profile(mut self, profile: GeneratorProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Closed-form row-mean parameters `(m, s_m)` for layer `l` (see module
    /// docs): solves `Φ(c·m / sqrt(1 + c²·s_m²)) = target_sparsity`.
    pub fn row_mean_params(&self, l: usize) -> (f64, f64) {
        let d = self.config.hidden_dim as f64;
        let mu_x = self.profile.x_mean(l, self.config.n_layers);
        let sigma_x = self.profile.x_std(l, self.config.n_layers);
        let spread = self.profile.row_zscore_spread(l, self.config.n_layers);
        let c = d.sqrt() * mu_x / (sigma_x * sigma_x + mu_x * mu_x).sqrt();
        let s_m = spread / c;
        let m = normal_quantile(self.config.target_sparsity) * (1.0 + spread * spread).sqrt() / c;
        (m, s_m)
    }

    /// Generates the full model.
    pub fn build(&self) -> Model {
        let cfg = &self.config;
        let d = cfg.hidden_dim;
        let mut root = Prng::seed(self.seed);

        // Embedding: zero-mean unit Gaussian per element.
        let mut emb_rng = root.fork(0xE4B);
        let embedding = Matrix::from_fn(cfg.vocab_size, d, |_, _| emb_rng.normal(0.0, 1.0) as f32);

        let mut layers = Vec::with_capacity(cfg.n_layers);
        for l in 0..cfg.n_layers {
            let mut rng = root.fork(l as u64 + 1);
            layers.push(self.build_layer(l, &mut rng));
        }

        let mut head_rng = root.fork(0x1EAD);
        let inv_sqrt_d = 1.0 / (d as f64).sqrt();
        let lm_head = Matrix::from_fn(cfg.vocab_size, d, |_, _| {
            head_rng.normal(0.0, inv_sqrt_d) as f32
        });

        Model::new(cfg.clone(), embedding, layers, RmsNorm::unit(d), lm_head)
    }

    fn build_layer(&self, l: usize, rng: &mut Prng) -> DecoderLayer {
        let cfg = &self.config;
        let d = cfg.hidden_dim;
        let k = cfg.mlp_dim;
        let inv_sqrt_d = 1.0 / (d as f64).sqrt();

        // Attention: modest zero-mean projections; the residual stream is
        // dominated by the embedding + MLP path, as in real models during
        // decode.
        let mut attn_rng = rng.fork(0xA77);
        let mut proj = |scale: f64| {
            Matrix::from_fn(d, d, |_, _| attn_rng.normal(0.0, scale * inv_sqrt_d) as f32)
        };
        let attn = Attention::new(proj(0.6), proj(0.6), proj(0.5), proj(0.35), cfg.n_heads);

        // Pre-MLP norm: shapes X to N(mu_x, sigma_x^2) per element.
        let mu_x = self.profile.x_mean(l, cfg.n_layers);
        let sigma_x = self.profile.x_std(l, cfg.n_layers);
        let mut norm_rng = rng.fork(0x0127);
        let gain = Vector::from_fn(d, |_| {
            (sigma_x * (1.0 + 0.08 * norm_rng.standard_normal())) as f32
        });
        let bias = Vector::from_fn(d, |_| {
            (mu_x * (1.0 + 0.10 * norm_rng.standard_normal())) as f32
        });
        let mlp_norm = RmsNorm::with_bias(gain, bias);

        // Gate matrix: per-row mean nu_r/sqrt(d) with nu_r ~ N(-m, s_m^2).
        let (m, s_m) = self.row_mean_params(l);
        let mut gate_rng = rng.fork(0x6A7E);
        let mut w_gate = Matrix::zeros(k, d);
        for r in 0..k {
            let nu = gate_rng.normal(-m, s_m);
            let row_mean = nu * inv_sqrt_d;
            let row = w_gate.row_mut(r);
            for w in row.iter_mut() {
                *w = gate_rng.normal(row_mean, inv_sqrt_d) as f32;
            }
        }

        // Up projection: zero-mean.
        let mut up_rng = rng.fork(0x0B0);
        let w_up = Matrix::from_fn(k, d, |_, _| up_rng.normal(0.0, inv_sqrt_d) as f32);

        // Down projection (stored transposed, k×d): scaled so that the MLP
        // residual update stays O(0.5) given ~(1-s)·k active elements.
        let active = ((1.0 - cfg.target_sparsity) * k as f64).max(1.0);
        let sigma_down = 0.5 / active.sqrt();
        let mut down_rng = rng.fork(0xD047);
        let w_down_t = Matrix::from_fn(k, d, |_, _| down_rng.normal(0.0, sigma_down) as f32);

        let mlp = GatedMlp::new(w_gate, w_up, w_down_t, cfg.activation);
        DecoderLayer::new(RmsNorm::unit(d), attn, mlp_norm, mlp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MlpTrace;

    fn mid_config() -> ModelConfig {
        ModelConfig {
            name: "mid".into(),
            hidden_dim: 64,
            mlp_dim: 192,
            n_layers: 6,
            n_heads: 2,
            vocab_size: 96,
            max_seq_len: 64,
            activation: crate::Activation::Relu,
            target_sparsity: 0.9,
        }
    }

    #[test]
    fn build_produces_consistent_shapes() {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 1).build();
        assert_eq!(model.layers().len(), cfg.n_layers);
        assert_eq!(model.layers()[0].mlp().mlp_dim(), cfg.mlp_dim);
        assert_eq!(model.layers()[0].mlp().hidden_dim(), cfg.hidden_dim);
    }

    #[test]
    fn same_seed_reproduces_weights() {
        let cfg = ModelConfig::tiny();
        let a = WeightGenerator::new(&cfg, 7).build();
        let b = WeightGenerator::new(&cfg, 7).build();
        let x = Vector::from_fn(cfg.hidden_dim, |i| (i as f32 * 0.1).sin());
        let ya = a.layers()[0].mlp().forward(&x);
        let yb = b.layers()[0].mlp().forward(&x);
        assert_eq!(ya, yb);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ModelConfig::tiny();
        let a = WeightGenerator::new(&cfg, 1).build();
        let b = WeightGenerator::new(&cfg, 2).build();
        assert_ne!(
            a.layers()[0].mlp().w_gate().as_slice()[..8],
            b.layers()[0].mlp().w_gate().as_slice()[..8]
        );
    }

    #[test]
    fn measured_sparsity_tracks_target() {
        let cfg = mid_config();
        let model = WeightGenerator::new(&cfg, 42).build();
        let prompt: Vec<u32> = (1..24).collect();
        let trace = MlpTrace::capture(&model, &prompt, 0);
        let per_layer = trace.sparsity_per_layer();
        let mean: f64 = per_layer.iter().sum::<f64>() / per_layer.len() as f64;
        assert!(
            (mean - cfg.target_sparsity).abs() < 0.08,
            "mean sparsity {mean:.3} vs target {}",
            cfg.target_sparsity
        );
    }

    #[test]
    fn early_layers_have_narrow_near_zero_inputs() {
        let cfg = mid_config();
        let model = WeightGenerator::new(&cfg, 43).build();
        let prompt: Vec<u32> = (1..16).collect();
        let trace = MlpTrace::capture(&model, &prompt, 0);
        let early = trace.x_summary(0);
        let late = trace.x_summary(cfg.n_layers - 1);
        assert!(
            early.mean().abs() < late.mean().abs(),
            "early mean {} vs late mean {}",
            early.mean(),
            late.mean()
        );
        assert!(
            early.std_dev() < late.std_dev(),
            "early std {} vs late std {}",
            early.std_dev(),
            late.std_dev()
        );
    }

    #[test]
    fn row_mean_params_solve_the_closed_form() {
        let cfg = mid_config();
        let generator = WeightGenerator::new(&cfg, 1);
        let (m, s_m) = generator.row_mean_params(cfg.n_layers - 1);
        // Re-evaluate the forward formula.
        let d = cfg.hidden_dim as f64;
        let mu = generator.profile.x_mean(cfg.n_layers - 1, cfg.n_layers);
        let sd = generator.profile.x_std(cfg.n_layers - 1, cfg.n_layers);
        let c = d.sqrt() * mu / (sd * sd + mu * mu).sqrt();
        let predicted =
            sparseinfer_tensor::stats::normal_cdf(c * m / (1.0 + c * c * s_m * s_m).sqrt());
        assert!(
            (predicted - cfg.target_sparsity).abs() < 1e-6,
            "closed form gives {predicted}"
        );
    }

    #[test]
    fn hidden_states_remain_finite_over_depth() {
        let cfg = mid_config();
        let model = WeightGenerator::new(&cfg, 44).build();
        let logits = model.prefill(&(1..32).collect::<Vec<u32>>());
        assert!(logits.iter().all(|v| v.is_finite()));
        let norm = logits.norm();
        assert!(norm > 1e-3 && norm < 1e4, "logit norm {norm}");
    }
}
