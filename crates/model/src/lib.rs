//! ReLU-fied Llama-style transformer substrate for the SparseInfer
//! reproduction.
//!
//! The paper evaluates on ProSparse-Llama2-7B/13B — Llama-2 models whose SiLU
//! activations were replaced with ReLU and fine-tuned to ~90% activation
//! sparsity. Those weights are not available in this environment, so this
//! crate implements the *architecture* faithfully (RMSNorm → multi-head
//! attention with RoPE and a KV cache → RMSNorm → gated MLP, all with
//! residual connections) and pairs it with a **synthetic weight generator**
//! ([`generator`]) whose statistics are calibrated to the distributions the
//! paper observes:
//!
//! * MLP inputs `X` and gate rows `W_gate,i` are approximately Gaussian
//!   (paper Fig. 2) — the assumption the sign-bit predictor rests on;
//! * the fraction of gate pre-activations that are negative (≡ activation
//!   sparsity after ReLU) is calibrated per layer to a target (~90%,
//!   ProSparse's reported level);
//! * early layers reproduce the paper's pathology: `X` narrowly concentrated
//!   around zero, which makes sign-count prediction less precise there.
//!
//! The configuration presets carry both the *paper* dimensions (used by all
//! analytic op-count / memory / latency computations) and scaled *simulation*
//! dimensions (used to actually run tokens through the network on a CPU).
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{ModelConfig, generator::WeightGenerator};
//!
//! let cfg = ModelConfig::tiny();
//! let model = WeightGenerator::new(&cfg, 42).build();
//! let logits = model.prefill(&[1, 2, 3]);
//! assert_eq!(logits.len(), cfg.vocab_size);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod attention;
pub mod config;
pub mod generator;
pub mod kv;
pub mod layer;
pub mod mlp;
pub mod model;
pub mod norm;
pub mod sampling;
pub mod tokenizer;
pub mod trace;

pub use activation::Activation;
pub use config::ModelConfig;
pub use kv::{KvBlockPool, KvDtype, PagedKvCache, PrefixHit, PrefixIndex, SharedKvBlock};
pub use layer::DecoderLayer;
pub use mlp::GatedMlp;
pub use model::Model;
pub use sampling::Sampler;
pub use tokenizer::ByteTokenizer;
pub use trace::MlpTrace;
