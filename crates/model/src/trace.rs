//! Activation trace capture.
//!
//! Traces record, per layer, the MLP input `X` and the gate pre-activations
//! `z = X · W_gate` for a stream of decoded tokens. They feed three
//! consumers: the Fig. 2 distribution plots, predictor precision/recall
//! measurement (Fig. 3), and DejaVu predictor training data.

use sparseinfer_tensor::stats::Summary;
use sparseinfer_tensor::Vector;

use crate::model::{DecodeSession, Model};

/// One layer's capture for one token: the MLP input and the gate
/// pre-activations.
#[derive(Debug, Clone)]
pub struct MlpSample {
    /// Layer index.
    pub layer: usize,
    /// The normalized MLP input `X` (length `d`).
    pub x: Vector,
    /// Gate pre-activations `z = X · W_gate` (length `k`); `z_i ≤ 0` means
    /// output element `i` is sparse under ReLU.
    pub preact: Vector,
}

/// A collection of [`MlpSample`]s across layers and tokens.
#[derive(Debug, Clone, Default)]
pub struct MlpTrace {
    samples: Vec<MlpSample>,
    n_layers: usize,
}

impl MlpTrace {
    /// Creates an empty trace for a model with `n_layers` layers.
    pub fn new(n_layers: usize) -> Self {
        Self {
            samples: Vec::new(),
            n_layers,
        }
    }

    /// Records a trace by running `prompt` (and `extra_tokens` greedy
    /// continuations) densely through `model`, capturing every layer's MLP
    /// input and pre-activations at every decoded position.
    pub fn capture(model: &Model, prompt: &[u32], extra_tokens: usize) -> Self {
        let mut trace = Self::new(model.config().n_layers);
        let mut session = model.start_session();
        let mut next = None;
        let total = prompt.len() + extra_tokens;
        for step in 0..total {
            let token = if step < prompt.len() {
                prompt[step]
            } else {
                next.expect("generation step requires previous logits")
            };
            let logits = trace.forward_capturing(model, token, &mut session);
            next = Some(logits.argmax().expect("nonzero vocab") as u32);
        }
        trace
    }

    /// Forward one token, capturing per-layer MLP inputs/pre-activations.
    pub fn forward_capturing(
        &mut self,
        model: &Model,
        token: u32,
        session: &mut DecodeSession,
    ) -> Vector {
        let mut h = model.embed(token);
        for (li, (layer, cache)) in model
            .layers()
            .iter()
            .zip(session.caches.iter_mut())
            .enumerate()
        {
            let mid = layer.attention_half(&h, session.position, cache);
            let x = layer.mlp_norm().forward(&mid);
            let preact = layer.mlp().gate_preactivations(&x);
            self.samples.push(MlpSample {
                layer: li,
                x: x.clone(),
                preact: preact.clone(),
            });

            // Complete the MLP from the captured pre-activations.
            let mut h1 = preact;
            layer.mlp().activation().apply_slice(h1.as_mut_slice());
            let h2 = sparseinfer_tensor::gemv::gemv(layer.mlp().w_up(), &x);
            let h3 = h1.hadamard(&h2).expect("h1/h2 same length");
            let mlp_out = sparseinfer_tensor::gemv::gemv_transposed(layer.mlp().w_down_t(), &h3);
            h = mid;
            h.add_assign(&mlp_out);
        }
        session.position += 1;
        model.logits(&h)
    }

    /// All samples.
    pub fn samples(&self) -> &[MlpSample] {
        &self.samples
    }

    /// Samples belonging to one layer.
    pub fn layer_samples(&self, layer: usize) -> impl Iterator<Item = &MlpSample> {
        self.samples.iter().filter(move |s| s.layer == layer)
    }

    /// Number of layers this trace was configured for.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Mean activation sparsity per layer (fraction of non-positive gate
    /// pre-activations under ReLU).
    pub fn sparsity_per_layer(&self) -> Vec<f64> {
        let mut zero_counts = vec![0u64; self.n_layers];
        let mut totals = vec![0u64; self.n_layers];
        for s in &self.samples {
            let zeros = s.preact.iter().filter(|v| **v <= 0.0).count() as u64;
            zero_counts[s.layer] += zeros;
            totals[s.layer] += s.preact.len() as u64;
        }
        zero_counts
            .iter()
            .zip(&totals)
            .map(|(z, t)| if *t == 0 { 0.0 } else { *z as f64 / *t as f64 })
            .collect()
    }

    /// Summary statistics of the MLP inputs of one layer (the `X` panel of
    /// Fig. 2).
    pub fn x_summary(&self, layer: usize) -> Summary {
        let mut s = Summary::new();
        for sample in self.layer_samples(layer) {
            s.extend(sample.x.iter().map(|v| *v as f64));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::generator::WeightGenerator;

    #[test]
    fn capture_records_layers_times_tokens_samples() {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 7).build();
        let trace = MlpTrace::capture(&model, &[1, 2, 3], 2);
        assert_eq!(trace.samples().len(), cfg.n_layers * 5);
        assert_eq!(trace.layer_samples(0).count(), 5);
        assert_eq!(trace.layer_samples(cfg.n_layers - 1).count(), 5);
    }

    #[test]
    fn capturing_forward_matches_dense_forward() {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 8).build();

        let mut s1 = model.start_session();
        let dense = model.forward_token(4, &mut s1);

        let mut trace = MlpTrace::new(cfg.n_layers);
        let mut s2 = model.start_session();
        let captured = trace.forward_capturing(&model, 4, &mut s2);

        for (a, b) in dense.iter().zip(captured.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn sparsity_per_layer_is_computed_from_preacts() {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 9).build();
        let trace = MlpTrace::capture(&model, &[1, 2], 0);
        let sp = trace.sparsity_per_layer();
        assert_eq!(sp.len(), cfg.n_layers);
        for (l, s) in sp.iter().enumerate() {
            assert!((0.0..=1.0).contains(s), "layer {l}: {s}");
        }
    }

    #[test]
    fn x_summary_sees_layer_specific_data() {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 10).build();
        let trace = MlpTrace::capture(&model, &[1, 2, 3], 0);
        let s = trace.x_summary(0);
        assert_eq!(s.count(), (cfg.hidden_dim * 3) as u64);
    }
}
