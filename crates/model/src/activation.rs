//! MLP activation functions and ReLUfication.
//!
//! Modern Llama-family models use SiLU, which is almost never exactly zero —
//! useless for sparsity skipping. The ReLUfication line of work (Mirzadeh et
//! al.; ProSparse) swaps in ReLU (or FATReLU with a positive threshold) and
//! fine-tunes, producing ~90% exact zeros. SparseInfer targets those
//! ReLU-fied models; this module provides all four activations plus the
//! mechanical `relufy` transform so the workspace can also demonstrate *why*
//! SiLU models don't benefit.

/// An MLP gate activation function.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Activation {
    /// Sigmoid Linear Unit `x · σ(x)` — Llama-2's default; essentially never
    /// outputs exact zeros.
    Silu,
    /// Gaussian Error Linear Unit (tanh approximation).
    Gelu,
    /// Rectified Linear Unit `max(x, 0)` — the ReLU-fied models' activation;
    /// every negative pre-activation becomes an exact zero.
    #[default]
    Relu,
    /// FATReLU: zero below a positive threshold `t`, identity above
    /// (Kurtz et al.; used by ProSparse to push sparsity higher).
    FatRelu(f32),
}

impl Activation {
    /// Applies the activation to one value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Silu => x / (1.0 + (-x).exp()),
            Activation::Gelu => {
                // tanh approximation of GELU
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
            }
            Activation::Relu => x.max(0.0),
            Activation::FatRelu(t) => {
                if x >= t {
                    x
                } else {
                    0.0
                }
            }
        }
    }

    /// Applies the activation in place to a slice.
    pub fn apply_slice(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Whether a pre-activation value maps to an *exact zero* — the
    /// definition of activation sparsity the skip logic relies on.
    pub fn is_sparse_at(self, x: f32) -> bool {
        match self {
            Activation::Silu | Activation::Gelu => self.apply(x) == 0.0,
            Activation::Relu => x <= 0.0,
            Activation::FatRelu(t) => x < t,
        }
    }

    /// The ReLUfication transform: SiLU/GELU become ReLU, ReLU-family
    /// activations are unchanged. (In the papers this is followed by
    /// fine-tuning; our synthetic generator plays that role by calibrating
    /// the weight statistics directly.)
    pub fn relufy(self) -> Activation {
        match self {
            Activation::Silu | Activation::Gelu => Activation::Relu,
            other => other,
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Activation::Silu => write!(f, "silu"),
            Activation::Gelu => write!(f, "gelu"),
            Activation::Relu => write!(f, "relu"),
            Activation::FatRelu(t) => write!(f, "fatrelu({t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives_exactly() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn silu_is_smooth_and_nonzero_for_negatives() {
        let y = Activation::Silu.apply(-1.0);
        assert!(y < 0.0 && y > -0.5, "silu(-1) = {y}");
        assert!(!Activation::Silu.is_sparse_at(-1.0));
        assert_eq!(Activation::Silu.apply(0.0), 0.0);
    }

    #[test]
    fn gelu_matches_known_points() {
        assert!((Activation::Gelu.apply(0.0)).abs() < 1e-6);
        assert!((Activation::Gelu.apply(1.0) - 0.8412).abs() < 1e-3);
        assert!((Activation::Gelu.apply(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn fatrelu_thresholds_below_t() {
        let a = Activation::FatRelu(0.5);
        assert_eq!(a.apply(0.4), 0.0);
        assert_eq!(a.apply(0.5), 0.5);
        assert_eq!(a.apply(-1.0), 0.0);
        assert!(a.is_sparse_at(0.4));
        assert!(!a.is_sparse_at(0.6));
    }

    #[test]
    fn relufication_converts_smooth_activations() {
        assert_eq!(Activation::Silu.relufy(), Activation::Relu);
        assert_eq!(Activation::Gelu.relufy(), Activation::Relu);
        assert_eq!(Activation::Relu.relufy(), Activation::Relu);
        assert_eq!(Activation::FatRelu(0.1).relufy(), Activation::FatRelu(0.1));
    }

    #[test]
    fn relu_sparsity_predicate_matches_apply() {
        for x in [-2.0, -0.1, 0.0, 0.1, 2.0] {
            assert_eq!(
                Activation::Relu.is_sparse_at(x),
                Activation::Relu.apply(x) == 0.0
            );
        }
    }

    #[test]
    fn apply_slice_works_in_place() {
        let mut xs = [-1.0, 2.0, -3.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 2.0, 0.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::FatRelu(0.25).to_string(), "fatrelu(0.25)");
    }
}
