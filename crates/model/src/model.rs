//! The full decoder-only model: embedding → layers → final norm → LM head.

use sparseinfer_tensor::{gemv::gemv_into, Matrix, ThreadPool, Vector, Workspace};

use crate::attention::KvCache;
use crate::config::ModelConfig;
use crate::layer::DecoderLayer;
use crate::norm::RmsNorm;

/// A decoder-only transformer with tied decode state.
///
/// The model itself is stateless; decoding state (KV caches, position) lives
/// in a [`DecodeSession`] so multiple engines (dense, SparseInfer,
/// PowerInfer-style) can run the *same* weights concurrently during
/// comparisons.
#[derive(Debug, Clone)]
pub struct Model {
    config: ModelConfig,
    embedding: Matrix, // vocab × d
    layers: Vec<DecoderLayer>,
    final_norm: RmsNorm,
    lm_head: Matrix, // vocab × d
}

impl Model {
    /// Assembles a model from parts (normally via
    /// [`WeightGenerator`](crate::generator::WeightGenerator)).
    ///
    /// # Panics
    ///
    /// Panics if the parts disagree with `config`.
    pub fn new(
        config: ModelConfig,
        embedding: Matrix,
        layers: Vec<DecoderLayer>,
        final_norm: RmsNorm,
        lm_head: Matrix,
    ) -> Self {
        assert_eq!(embedding.rows(), config.vocab_size, "embedding rows");
        assert_eq!(embedding.cols(), config.hidden_dim, "embedding cols");
        assert_eq!(layers.len(), config.n_layers, "layer count");
        assert_eq!(lm_head.rows(), config.vocab_size, "lm head rows");
        assert_eq!(lm_head.cols(), config.hidden_dim, "lm head cols");
        for (i, l) in layers.iter().enumerate() {
            assert_eq!(l.hidden_dim(), config.hidden_dim, "layer {i} dim");
        }
        Self {
            config,
            embedding,
            layers,
            final_norm,
            lm_head,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The decoder layers.
    pub fn layers(&self) -> &[DecoderLayer] {
        &self.layers
    }

    /// Mutable access to the decoder layers (ReLUfication demos).
    pub fn layers_mut(&mut self) -> &mut [DecoderLayer] {
        &mut self.layers
    }

    /// Embeds a token id.
    ///
    /// # Panics
    ///
    /// Panics if `token as usize >= vocab_size`.
    pub fn embed(&self, token: u32) -> Vector {
        Vector::from_vec(self.embedding.row(token as usize).to_vec())
    }

    /// Embeds a token id into a caller-provided buffer (no allocation once
    /// its capacity suffices).
    ///
    /// # Panics
    ///
    /// Panics if `token as usize >= vocab_size`.
    pub fn embed_into(&self, token: u32, out: &mut Vector) {
        out.copy_from(self.embedding.row(token as usize));
    }

    /// Projects a final hidden state to logits.
    pub fn logits(&self, h: &Vector) -> Vector {
        let mut out = Vector::zeros(0);
        let mut ws = Workspace::new();
        self.logits_into(h, &ThreadPool::single(), &mut ws, &mut out);
        out
    }

    /// Projects a final hidden state to logits into a caller-provided
    /// buffer, with the LM-head GEMV row-partitioned across `pool`.
    /// Bit-identical to [`logits`](Self::logits), which wraps this.
    pub fn logits_into(&self, h: &Vector, pool: &ThreadPool, ws: &mut Workspace, out: &mut Vector) {
        let mut normed = ws.take(h.len());
        self.final_norm.forward_into(h, &mut normed);
        gemv_into(&self.lm_head, &normed, pool, out);
        ws.give(normed);
    }

    /// Starts a decode session (fresh KV caches at position 0). Caches are
    /// unreserved — they grow amortized; serving paths that want strict
    /// allocation-free decode use
    /// [`start_session_with_capacity`](Self::start_session_with_capacity).
    pub fn start_session(&self) -> DecodeSession {
        DecodeSession {
            caches: (0..self.layers.len()).map(|_| KvCache::new()).collect(),
            position: 0,
        }
    }

    /// Starts a decode session whose KV caches are pre-reserved for
    /// `tokens` positions: decoding within that budget never reallocates
    /// cache storage.
    pub fn start_session_with_capacity(&self, tokens: usize) -> DecodeSession {
        DecodeSession {
            caches: (0..self.layers.len())
                .map(|_| KvCache::with_capacity(self.config.hidden_dim, tokens))
                .collect(),
            position: 0,
        }
    }

    /// Starts a decode session whose per-layer KV caches page their
    /// storage out of `pool`: blocks are allocated lazily as tokens are
    /// produced and returned the moment the session drops — memory tracks
    /// tokens actually generated, never a `prompt + max_new` reservation.
    /// Decoded tokens are bit-identical to any other session layout.
    pub fn start_paged_session(&self, pool: &crate::kv::KvBlockPool) -> DecodeSession {
        DecodeSession {
            caches: (0..self.layers.len())
                .map(|_| KvCache::paged(pool))
                .collect(),
            position: 0,
        }
    }

    /// Starts a paged decode session whose per-layer caches begin with the
    /// shared blocks of a prefix-cache hit: the first `hit.tokens`
    /// positions of context are already present (aliased, not copied —
    /// attaching allocates nothing), and the session's position starts
    /// past them. The caller is responsible for the hit actually matching
    /// this model's weights and the prompt being fed (the serving layer
    /// keys its [`PrefixIndex`](crate::kv::PrefixIndex) accordingly);
    /// decode over attached blocks is bit-identical to recomputing them
    /// because dense prefill is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the hit does not cover exactly one block run per model
    /// layer, or if its blocks are partial/foreign to `pool`.
    pub fn start_paged_session_with_prefix(
        &self,
        pool: &crate::kv::KvBlockPool,
        hit: &crate::kv::PrefixHit,
    ) -> DecodeSession {
        assert_eq!(
            hit.layer_blocks.len(),
            self.layers.len(),
            "prefix hit layer count must match the model"
        );
        let caches: Vec<KvCache> = hit
            .layer_blocks
            .iter()
            .map(|blocks| KvCache::paged_with_prefix(pool, blocks.clone()))
            .collect();
        for cache in &caches {
            assert_eq!(
                cache.len(),
                hit.tokens,
                "attached blocks must cover exactly the hit's token count"
            );
        }
        DecodeSession {
            caches,
            position: hit.tokens,
        }
    }

    /// Dense forward pass of one token through all layers; advances the
    /// session and returns the logits.
    ///
    /// # Panics
    ///
    /// Panics if the session's cache count does not match this model.
    pub fn forward_token(&self, token: u32, session: &mut DecodeSession) -> Vector {
        assert_eq!(
            session.caches.len(),
            self.layers.len(),
            "session/model mismatch"
        );
        let mut h = self.embed(token);
        for (layer, cache) in self.layers.iter().zip(session.caches.iter_mut()) {
            h = layer.forward(&h, session.position, cache);
        }
        session.position += 1;
        self.logits(&h)
    }

    /// Runs a whole prompt densely, returning the logits after the last
    /// prompt token (the paper exploits sparsity only in decode, not
    /// prefill, so prefill is always dense).
    pub fn prefill(&self, prompt: &[u32]) -> Vector {
        let mut session = self.start_session();
        self.prefill_session(prompt, &mut session)
    }

    /// Prefill into an existing session.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn prefill_session(&self, prompt: &[u32], session: &mut DecodeSession) -> Vector {
        assert!(!prompt.is_empty(), "prefill requires at least one token");
        let mut logits = Vector::zeros(self.config.vocab_size);
        for t in prompt {
            logits = self.forward_token(*t, session);
        }
        logits
    }

    /// Greedy decode: prefill `prompt`, then generate until EOS/`max_new`.
    pub fn generate_greedy(&self, prompt: &[u32], max_new: usize, eos: u32) -> Vec<u32> {
        self.generate_with(
            prompt,
            max_new,
            eos,
            &mut crate::sampling::Sampler::greedy(),
        )
    }

    /// Sampled decode: prefill `prompt`, then draw up to `max_new` tokens
    /// from `sampler`, stopping early at `eos`. The sampler is advanced in
    /// place so a caller can continue its stream across calls; clone it for
    /// a replay.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_with(
        &self,
        prompt: &[u32],
        max_new: usize,
        eos: u32,
        sampler: &mut crate::sampling::Sampler,
    ) -> Vec<u32> {
        let mut session = self.start_session();
        let mut logits = self.prefill_session(prompt, &mut session);
        let mut out = Vec::new();
        for _ in 0..max_new {
            let next = sampler.sample(&logits).expect("nonzero vocab") as u32;
            if next == eos {
                break;
            }
            out.push(next);
            logits = self.forward_token(next, &mut session);
        }
        out
    }
}

/// Mutable decoding state: per-layer KV caches and the next position.
#[derive(Debug, Clone, Default)]
pub struct DecodeSession {
    /// One KV cache per layer.
    pub caches: Vec<KvCache>,
    /// Position index of the next token.
    pub position: usize,
}

impl DecodeSession {
    /// Number of context tokens already absorbed (the next write position).
    pub fn context_len(&self) -> usize {
        self.position
    }

    /// Resets to an empty context.
    pub fn reset(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
        self.position = 0;
    }

    /// Rolls the whole session back to `len` context positions — every
    /// layer's KV cache is truncated (see
    /// [`KvCache::truncate`](crate::attention::KvCache::truncate)) and the
    /// next write position rewound. The rollback step of speculative
    /// decoding: rejected draft positions vanish from every layer at once,
    /// leaving the accepted context bit-identical.
    pub fn truncate(&mut self, len: usize) {
        for c in &mut self.caches {
            c.truncate(len);
        }
        self.position = self.position.min(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WeightGenerator;

    fn tiny_model(seed: u64) -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), seed).build()
    }

    #[test]
    fn forward_token_returns_vocab_logits() {
        let m = tiny_model(1);
        let mut s = m.start_session();
        let logits = m.forward_token(3, &mut s);
        assert_eq!(logits.len(), m.config().vocab_size);
        assert_eq!(s.position, 1);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn decoding_is_deterministic() {
        let m = tiny_model(2);
        let a = m.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        let b = m.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn different_prompts_reach_different_states() {
        let m = tiny_model(3);
        let a = m.prefill(&[1, 2]);
        let b = m.prefill(&[4, 5]);
        let diff: f32 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn session_reset_reproduces_fresh_run() {
        let m = tiny_model(4);
        let mut s = m.start_session();
        let first = m.prefill_session(&[5, 6, 7], &mut s);
        s.reset();
        let second = m.prefill_session(&[5, 6, 7], &mut s);
        for (a, b) in first.iter().zip(second.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn generate_stops_at_eos() {
        let m = tiny_model(5);
        // Find what the model wants to emit, then declare it EOS.
        let first = m.generate_greedy(&[1], 1, u32::MAX)[0];
        let out = m.generate_greedy(&[1], 8, first);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_prefill_panics() {
        let m = tiny_model(6);
        let _ = m.prefill(&[]);
    }
}
