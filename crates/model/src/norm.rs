//! RMS normalization with an optional bias.
//!
//! Llama uses bias-free RMSNorm. The synthetic substrate adds an *optional*
//! per-channel bias to the pre-MLP norm: it is the calibration knob that lets
//! the weight generator shape the per-layer distribution of the MLP input `X`
//! (mean offset and concentration) to match what the paper observes on real
//! ProSparse checkpoints (Fig. 2: early layers narrow and near zero, later
//! layers wider). The substitution is documented in DESIGN.md; inference-side
//! code treats the norm as a black box either way.

use sparseinfer_tensor::Vector;

/// Root-mean-square layer normalization: `y = x / rms(x) ⊙ gain (+ bias)`.
///
/// # Example
///
/// ```
/// use sparseinfer_model::norm::RmsNorm;
/// use sparseinfer_tensor::Vector;
///
/// let norm = RmsNorm::unit(4);
/// let y = norm.forward(&Vector::from_vec(vec![2.0, -2.0, 2.0, -2.0]));
/// assert!((y[0] - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RmsNorm {
    gain: Vector,
    bias: Option<Vector>,
    eps: f32,
}

impl RmsNorm {
    /// Creates a norm with all-ones gain and no bias.
    pub fn unit(dim: usize) -> Self {
        Self {
            gain: Vector::from_fn(dim, |_| 1.0),
            bias: None,
            eps: 1e-5,
        }
    }

    /// Creates a norm with the given gain and no bias.
    pub fn new(gain: Vector) -> Self {
        Self {
            gain,
            bias: None,
            eps: 1e-5,
        }
    }

    /// Creates a norm with gain and per-channel bias (the synthetic
    /// substrate's distribution-shaping variant).
    ///
    /// # Panics
    ///
    /// Panics if `gain.len() != bias.len()`.
    pub fn with_bias(gain: Vector, bias: Vector) -> Self {
        assert_eq!(gain.len(), bias.len(), "gain/bias length mismatch");
        Self {
            gain,
            bias: Some(bias),
            eps: 1e-5,
        }
    }

    /// Normalized dimension.
    pub fn dim(&self) -> usize {
        self.gain.len()
    }

    /// Applies the normalization.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn forward(&self, x: &Vector) -> Vector {
        let mut out = Vector::zeros(0);
        self.forward_into(x, &mut out);
        out
    }

    /// Applies the normalization into a caller-provided buffer (resized to
    /// `self.dim()`; no allocation once its capacity suffices). Numerically
    /// identical to [`forward`](Self::forward), which wraps this.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn forward_into(&self, x: &Vector, out: &mut Vector) {
        assert_eq!(x.len(), self.dim(), "rmsnorm input length mismatch");
        let ms: f32 = x.as_slice().iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
        let inv_rms = 1.0 / (ms + self.eps).sqrt();
        out.resize(x.len(), 0.0);
        for (i, slot) in out.as_mut_slice().iter_mut().enumerate() {
            *slot = x[i] * inv_rms * self.gain[i];
        }
        if let Some(bias) = &self.bias {
            out.add_assign(bias);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_norm_produces_unit_rms() {
        let norm = RmsNorm::unit(8);
        let x = Vector::from_fn(8, |i| (i as f32 + 1.0) * 3.0);
        let y = norm.forward(&x);
        let rms = (y.as_slice().iter().map(|v| v * v).sum::<f32>() / 8.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3, "rms = {rms}");
    }

    #[test]
    fn gain_scales_channels_independently() {
        let gain = Vector::from_vec(vec![2.0, 0.5]);
        let norm = RmsNorm::new(gain);
        let x = Vector::from_vec(vec![1.0, 1.0]);
        let y = norm.forward(&x);
        assert!((y[0] / y[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn bias_shifts_output_mean() {
        let dim = 16;
        let norm = RmsNorm::with_bias(Vector::from_fn(dim, |_| 1.0), Vector::from_fn(dim, |_| 0.5));
        let x = Vector::from_fn(dim, |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let y = norm.forward(&x);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / dim as f32;
        assert!((mean - 0.5).abs() < 1e-4, "mean = {mean}");
    }

    #[test]
    fn zero_input_is_stable() {
        let norm = RmsNorm::unit(4);
        let y = norm.forward(&Vector::zeros(4));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_input_panics() {
        RmsNorm::unit(4).forward(&Vector::zeros(5));
    }
}
