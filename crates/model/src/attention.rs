//! Multi-head self-attention with rotary position embeddings and a KV cache.
//!
//! SparseInfer leaves the attention block dense (the paper exploits sparsity
//! only in the MLP; §III's profiling attributes 38% of decode time to
//! attention and 62% to the MLP). A complete attention implementation is
//! still required so the functional model decodes real token sequences and
//! the accuracy experiments exercise the same residual-stream dynamics as the
//! paper's models.

use sparseinfer_tensor::{gemv::gemv, Matrix, Vector};

/// Grows-per-token key/value cache for one attention block.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    keys: Vec<Vector>,
    values: Vec<Vector>,
}

impl KvCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Appends one position.
    pub fn push(&mut self, key: Vector, value: Vector) {
        self.keys.push(key);
        self.values.push(value);
    }

    /// Clears all cached positions (start of a new sequence).
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
    }
}

/// Multi-head self-attention with RoPE.
#[derive(Debug, Clone, PartialEq)]
pub struct Attention {
    w_q: Matrix,
    w_k: Matrix,
    w_v: Matrix,
    w_o: Matrix,
    n_heads: usize,
}

impl Attention {
    /// Builds an attention block from four `d×d` projection matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrices are not square and equal-sized, or if the
    /// dimension is not divisible by `n_heads`.
    pub fn new(w_q: Matrix, w_k: Matrix, w_v: Matrix, w_o: Matrix, n_heads: usize) -> Self {
        let d = w_q.rows();
        for (name, m) in [("w_q", &w_q), ("w_k", &w_k), ("w_v", &w_v), ("w_o", &w_o)] {
            assert_eq!(m.rows(), d, "{name} rows");
            assert_eq!(m.cols(), d, "{name} cols");
        }
        assert_eq!(d % n_heads, 0, "dim {d} not divisible by {n_heads} heads");
        assert_eq!((d / n_heads) % 2, 0, "head_dim must be even for RoPE");
        Self {
            w_q,
            w_k,
            w_v,
            w_o,
            n_heads,
        }
    }

    /// Model dimension.
    pub fn hidden_dim(&self) -> usize {
        self.w_q.rows()
    }

    /// Number of heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Applies rotary position embedding to a head-sliced vector in place.
    fn rope(head: &mut [f32], position: usize) {
        let half = head.len() / 2;
        for i in 0..half {
            let theta = (position as f32) * (10000.0f32).powf(-2.0 * i as f32 / head.len() as f32);
            let (sin, cos) = theta.sin_cos();
            let a = head[2 * i];
            let b = head[2 * i + 1];
            head[2 * i] = a * cos - b * sin;
            head[2 * i + 1] = a * sin + b * cos;
        }
    }

    /// Processes one token at `position`, reading and extending `cache`.
    ///
    /// Returns the attention output (before the residual connection).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.hidden_dim()`.
    pub fn forward(&self, x: &Vector, position: usize, cache: &mut KvCache) -> Vector {
        let d = self.hidden_dim();
        assert_eq!(x.len(), d, "attention input length mismatch");
        let head_dim = d / self.n_heads;

        let mut q = gemv(&self.w_q, x);
        let mut k = gemv(&self.w_k, x);
        let v = gemv(&self.w_v, x);

        for h in 0..self.n_heads {
            let span = h * head_dim..(h + 1) * head_dim;
            Self::rope(&mut q.as_mut_slice()[span.clone()], position);
            Self::rope(&mut k.as_mut_slice()[span], position);
        }

        cache.push(k, v);

        let scale = 1.0 / (head_dim as f32).sqrt();
        let seq = cache.len();
        let mut out = Vector::zeros(d);

        for h in 0..self.n_heads {
            let span = h * head_dim..(h + 1) * head_dim;
            let qh = &q.as_slice()[span.clone()];

            // Scores against every cached position (causal by construction).
            let mut scores = Vec::with_capacity(seq);
            for t in 0..seq {
                let kh = &cache.keys[t].as_slice()[span.clone()];
                let s: f32 = qh.iter().zip(kh).map(|(a, b)| a * b).sum();
                scores.push(s * scale);
            }
            // Softmax (max-subtracted for stability).
            let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for s in &mut scores {
                *s = (*s - max).exp();
                denom += *s;
            }
            // Weighted sum of values.
            let out_h = &mut out.as_mut_slice()[span];
            for (t, w) in scores.iter().enumerate() {
                let vh = &cache.values[t].as_slice()[h * head_dim..(h + 1) * head_dim];
                let w = w / denom;
                for (o, vv) in out_h.iter_mut().zip(vh) {
                    *o += w * vv;
                }
            }
        }

        gemv(&self.w_o, &out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_tensor::Prng;

    fn random_attention(seed: u64, d: usize, heads: usize) -> Attention {
        let mut rng = Prng::seed(seed);
        let mut m = || Matrix::from_fn(d, d, |_, _| rng.normal(0.0, 0.15) as f32);
        Attention::new(m(), m(), m(), m(), heads)
    }

    #[test]
    fn single_token_attends_to_itself() {
        let attn = random_attention(1, 16, 2);
        let mut cache = KvCache::new();
        let x = Vector::from_fn(16, |i| (i as f32 * 0.7).sin());
        let out = attn.forward(&x, 0, &mut cache);
        assert_eq!(out.len(), 16);
        assert_eq!(cache.len(), 1);
        // With one position, softmax weight is exactly 1 → out = W_o · v.
        let v = gemv(&attn.w_v, &x);
        let expected = gemv(&attn.w_o, &v);
        for (a, b) in out.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn cache_grows_per_token() {
        let attn = random_attention(2, 16, 2);
        let mut cache = KvCache::new();
        for pos in 0..5 {
            let x = Vector::from_fn(16, |i| ((i + pos) as f32).cos());
            let _ = attn.forward(&x, pos, &mut cache);
        }
        assert_eq!(cache.len(), 5);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn rope_makes_attention_position_dependent() {
        // With a single cached position softmax renormalizes any score to 1,
        // so RoPE can only show up once the query attends over two or more
        // positions with different relative distances.
        let attn = random_attention(3, 16, 2);
        let x0 = Vector::from_fn(16, |i| (i as f32 * 0.3).sin());
        let x1 = Vector::from_fn(16, |i| (i as f32 * 0.9).cos());

        let mut c1 = KvCache::new();
        let _ = attn.forward(&x0, 0, &mut c1);
        let near = attn.forward(&x1, 1, &mut c1);

        let mut c2 = KvCache::new();
        let _ = attn.forward(&x0, 0, &mut c2);
        let far = attn.forward(&x1, 9, &mut c2);

        let diff: f32 = near
            .iter()
            .zip(far.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "RoPE had no effect: diff {diff}");
    }

    #[test]
    fn rope_preserves_norm() {
        let mut head: Vec<f32> = (0..8).map(|i| (i as f32) - 3.5).collect();
        let before: f32 = head.iter().map(|v| v * v).sum();
        Attention::rope(&mut head, 7);
        let after: f32 = head.iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-3);
    }

    #[test]
    fn attention_output_is_finite_over_long_contexts() {
        let attn = random_attention(4, 32, 4);
        let mut cache = KvCache::new();
        for pos in 0..64 {
            let x = Vector::from_fn(32, |i| ((i * 7 + pos * 3) as f32 * 0.13).sin());
            let out = attn.forward(&x, pos, &mut cache);
            assert!(out.iter().all(|v| v.is_finite()), "position {pos}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_head_count_panics() {
        let _ = random_attention(5, 16, 3);
    }
}
