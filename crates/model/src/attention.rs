//! Multi-head self-attention with rotary position embeddings and a KV cache.
//!
//! SparseInfer leaves the attention block dense (the paper exploits sparsity
//! only in the MLP; §III's profiling attributes 38% of decode time to
//! attention and 62% to the MLP). A complete attention implementation is
//! still required so the functional model decodes real token sequences and
//! the accuracy experiments exercise the same residual-stream dynamics as the
//! paper's models.

use sparseinfer_tensor::{gemv::gemv_into, Matrix, ThreadPool, Vector, Workspace, F16};

use crate::kv::{KvBlockPool, KvDtype, PagedKvCache};

/// Contiguous KV storage: keys and values stored *flat* (position-major
/// `f32` runs). Appending a token is two `extend_from_slice` calls that
/// never allocate while the reserved capacity lasts — the strict
/// allocation-free decode layout.
#[derive(Debug, Clone, Default)]
struct ContiguousKv {
    keys: Vec<f32>,
    values: Vec<f32>,
    dim: usize,
}

/// The two KV layouts behind [`KvCache`].
#[derive(Debug, Clone)]
enum KvStorage {
    Contiguous(ContiguousKv),
    Paged(PagedKvCache),
}

impl Default for KvStorage {
    fn default() -> Self {
        KvStorage::Contiguous(ContiguousKv::default())
    }
}

/// Grows-per-token key/value cache for one attention block, over either of
/// two storage layouts:
///
/// * **Contiguous** (the default): one flat buffer per side. Reserve up
///   front with [`with_capacity`](KvCache::with_capacity) (or
///   [`Model::start_session_with_capacity`](crate::Model::start_session_with_capacity))
///   and pushes within the budget perform no allocation — the layout the
///   strict allocation-free decode tests pin down. An unreserved cache
///   still works, growing amortized like a `Vec`.
/// * **Paged** ([`paged`](KvCache::paged), or
///   [`Model::start_paged_session`](crate::Model::start_paged_session)):
///   fixed-size token blocks allocated **lazily** from a shared
///   [`KvBlockPool`] as tokens are produced, and returned to the pool the
///   moment the cache drops — the serving layout, where memory tracks
///   tokens *actually generated* instead of the `prompt + max_new` worst
///   case.
///
/// Both layouts hand out identical `&[f32]` position slices in identical
/// order, so every kernel reading through [`key`](KvCache::key) /
/// [`value`](KvCache::value) is bit-identical over either.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    storage: KvStorage,
}

impl KvCache {
    /// Creates an empty contiguous cache (dimension fixed by the first
    /// push).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty contiguous cache with room for `tokens` positions
    /// of dimension `dim` — pushes within that budget perform no
    /// allocation.
    pub fn with_capacity(dim: usize, tokens: usize) -> Self {
        Self {
            storage: KvStorage::Contiguous(ContiguousKv {
                keys: Vec::with_capacity(dim * tokens),
                values: Vec::with_capacity(dim * tokens),
                dim,
            }),
        }
    }

    /// Creates an empty paged cache allocating fixed-size blocks from
    /// `pool` as tokens arrive, and returning them on drop.
    pub fn paged(pool: &KvBlockPool) -> Self {
        Self {
            storage: KvStorage::Paged(PagedKvCache::new(pool)),
        }
    }

    /// Creates a paged cache whose context starts as `blocks` — full,
    /// shared blocks from a prefix-cache hit (see
    /// [`PagedKvCache::with_prefix`]). The blocks are aliased, not copied;
    /// pushes continue past them into fresh private blocks.
    ///
    /// # Panics
    ///
    /// Panics if any block is partial, from another pool, or dimension-
    /// mismatched.
    pub fn paged_with_prefix(pool: &KvBlockPool, blocks: Vec<crate::kv::SharedKvBlock>) -> Self {
        Self {
            storage: KvStorage::Paged(PagedKvCache::with_prefix(pool, blocks)),
        }
    }

    /// Whether this cache uses paged (pool-backed) storage.
    pub fn is_paged(&self) -> bool {
        matches!(self.storage, KvStorage::Paged(_))
    }

    /// The paged storage behind this cache, if it is paged — the access
    /// point for block-table sharing (prefix publication) and diagnostics.
    pub fn as_paged(&self) -> Option<&PagedKvCache> {
        match &self.storage {
            KvStorage::Contiguous(_) => None,
            KvStorage::Paged(p) => Some(p),
        }
    }

    /// Mutable access to the paged storage, if it is paged — the access
    /// point for swap-out/restore under scheduler preemption.
    pub fn as_paged_mut(&mut self) -> Option<&mut PagedKvCache> {
        match &mut self.storage {
            KvStorage::Contiguous(_) => None,
            KvStorage::Paged(p) => Some(p),
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        match &self.storage {
            KvStorage::Contiguous(c) => c.keys.len().checked_div(c.dim).unwrap_or(0),
            KvStorage::Paged(p) => p.len(),
        }
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of positions the cache can hold before its next allocation.
    pub fn reserved_tokens(&self) -> usize {
        match &self.storage {
            KvStorage::Contiguous(c) => c.keys.capacity().checked_div(c.dim).unwrap_or(0),
            KvStorage::Paged(p) => p.capacity_tokens(),
        }
    }

    /// Element type of the cached words: the pool's [`KvDtype`] for paged
    /// storage, always `F32` for contiguous.
    pub fn dtype(&self) -> KvDtype {
        match &self.storage {
            KvStorage::Contiguous(_) => KvDtype::F32,
            KvStorage::Paged(p) => p.dtype(),
        }
    }

    /// Appends position `t` of `src` into this cache. Paged-to-paged
    /// transfers copy the stored words raw (dtype-preserving — no f32
    /// round trip for `F16` pools); a paged `F16` source widens losslessly
    /// into a contiguous `f32` cache (every `f16` value is exactly
    /// representable in `f32`); every other combination goes through the
    /// `f32` read path. This is the cross-cache transfer primitive of
    /// speculative draft resync.
    ///
    /// # Panics
    ///
    /// Panics if `t >= src.len()` or on dimension mismatch.
    pub fn push_from(&mut self, src: &KvCache, t: usize) {
        if let KvStorage::Paged(s) = &src.storage {
            if let KvStorage::Paged(d) = &mut self.storage {
                d.push_from(s, t);
                return;
            }
            if s.dtype() == KvDtype::F16 {
                let KvStorage::Contiguous(c) = &mut self.storage else {
                    unreachable!("storage is contiguous or paged")
                };
                let key = s.key_h(t);
                let value = s.value_h(t);
                if c.dim == 0 {
                    c.dim = key.len();
                } else {
                    assert_eq!(key.len(), c.dim, "kv dimension mismatch");
                }
                c.keys.extend(key.iter().map(|v| v.to_f32()));
                c.values.extend(value.iter().map(|v| v.to_f32()));
                return;
            }
        }
        self.push(src.key(t), src.value(t));
    }

    /// Appends one position.
    ///
    /// # Panics
    ///
    /// Panics if `key` and `value` differ in length, or disagree with the
    /// dimension established by earlier pushes; a paged cache additionally
    /// panics if its pool's block budget is exhausted.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        match &mut self.storage {
            KvStorage::Contiguous(c) => {
                assert_eq!(key.len(), value.len(), "key/value length mismatch");
                if c.dim == 0 {
                    c.dim = key.len();
                } else {
                    assert_eq!(key.len(), c.dim, "kv dimension mismatch");
                }
                c.keys.extend_from_slice(key);
                c.values.extend_from_slice(value);
            }
            KvStorage::Paged(p) => p.push(key, value),
        }
    }

    /// The key vector cached at position `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`, or if the storage holds `F16` words
    /// (read those via [`key_h`](Self::key_h)).
    pub fn key(&self, t: usize) -> &[f32] {
        match &self.storage {
            KvStorage::Contiguous(c) => &c.keys[t * c.dim..(t + 1) * c.dim],
            KvStorage::Paged(p) => p.key(t),
        }
    }

    /// The value vector cached at position `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`, or if the storage holds `F16` words
    /// (read those via [`value_h`](Self::value_h)).
    pub fn value(&self, t: usize) -> &[f32] {
        match &self.storage {
            KvStorage::Contiguous(c) => &c.values[t * c.dim..(t + 1) * c.dim],
            KvStorage::Paged(p) => p.value(t),
        }
    }

    /// The key vector cached at position `t` as stored `F16` words.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()` or if the storage holds `f32`.
    pub fn key_h(&self, t: usize) -> &[F16] {
        match &self.storage {
            KvStorage::Contiguous(_) => panic!("contiguous KV is f32: read keys via key"),
            KvStorage::Paged(p) => p.key_h(t),
        }
    }

    /// The value vector cached at position `t` as stored `F16` words.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()` or if the storage holds `f32`.
    pub fn value_h(&self, t: usize) -> &[F16] {
        match &self.storage {
            KvStorage::Contiguous(_) => panic!("contiguous KV is f32: read values via value"),
            KvStorage::Paged(p) => p.value_h(t),
        }
    }

    /// Rolls the cache back to `len` positions (a no-op when `len` is not
    /// smaller than the current length) — the rollback primitive of
    /// speculative decoding. A contiguous cache keeps its reserved
    /// capacity; a paged cache releases whole blocks past the boundary and
    /// copy-on-write-forks a shared partial tail (see
    /// [`PagedKvCache::truncate`]).
    pub fn truncate(&mut self, len: usize) {
        match &mut self.storage {
            KvStorage::Contiguous(c) => {
                if len * c.dim < c.keys.len() {
                    c.keys.truncate(len * c.dim);
                    c.values.truncate(len * c.dim);
                }
            }
            KvStorage::Paged(p) => p.truncate(len),
        }
    }

    /// Ensures a contiguous cache can hold `tokens` positions without
    /// reallocating (no-op before the first push fixes the dimension, and
    /// for paged caches, which grow block-wise from their pool).
    pub fn reserve_tokens(&mut self, tokens: usize) {
        if let KvStorage::Contiguous(c) = &mut self.storage {
            if c.dim > 0 {
                let need = tokens * c.dim;
                if c.keys.len() < need {
                    c.keys.reserve(need - c.keys.len());
                    c.values.reserve(need - c.values.len());
                }
            }
        }
    }

    /// Bytes of KV content currently cached (`len` positions of keys plus
    /// values), for memory accounting.
    pub fn content_bytes(&self) -> u64 {
        match &self.storage {
            KvStorage::Contiguous(c) => {
                ((c.keys.len() + c.values.len()) * std::mem::size_of::<f32>()) as u64
            }
            KvStorage::Paged(p) => p.content_bytes(),
        }
    }

    /// Clears all cached positions (start of a new sequence). A contiguous
    /// cache retains its reserved capacity; a paged cache returns every
    /// block to its pool.
    pub fn clear(&mut self) {
        match &mut self.storage {
            KvStorage::Contiguous(c) => {
                c.keys.clear();
                c.values.clear();
            }
            KvStorage::Paged(p) => p.clear(),
        }
    }
}

/// Multi-head self-attention with RoPE.
#[derive(Debug, Clone, PartialEq)]
pub struct Attention {
    w_q: Matrix,
    w_k: Matrix,
    w_v: Matrix,
    w_o: Matrix,
    n_heads: usize,
}

impl Attention {
    /// Builds an attention block from four `d×d` projection matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrices are not square and equal-sized, or if the
    /// dimension is not divisible by `n_heads`.
    pub fn new(w_q: Matrix, w_k: Matrix, w_v: Matrix, w_o: Matrix, n_heads: usize) -> Self {
        let d = w_q.rows();
        for (name, m) in [("w_q", &w_q), ("w_k", &w_k), ("w_v", &w_v), ("w_o", &w_o)] {
            assert_eq!(m.rows(), d, "{name} rows");
            assert_eq!(m.cols(), d, "{name} cols");
        }
        assert_eq!(d % n_heads, 0, "dim {d} not divisible by {n_heads} heads");
        assert_eq!((d / n_heads) % 2, 0, "head_dim must be even for RoPE");
        Self {
            w_q,
            w_k,
            w_v,
            w_o,
            n_heads,
        }
    }

    /// Model dimension.
    pub fn hidden_dim(&self) -> usize {
        self.w_q.rows()
    }

    /// Number of heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Applies rotary position embedding to a head-sliced vector in place.
    fn rope(head: &mut [f32], position: usize) {
        let half = head.len() / 2;
        for i in 0..half {
            let theta = (position as f32) * (10000.0f32).powf(-2.0 * i as f32 / head.len() as f32);
            let (sin, cos) = theta.sin_cos();
            let a = head[2 * i];
            let b = head[2 * i + 1];
            head[2 * i] = a * cos - b * sin;
            head[2 * i + 1] = a * sin + b * cos;
        }
    }

    /// Processes one token at `position`, reading and extending `cache` —
    /// thin wrapper over [`forward_ws`](Self::forward_ws) that owns a
    /// throwaway workspace (bit-identical to the workspace path, which
    /// shares every kernel).
    ///
    /// Returns the attention output (before the residual connection).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.hidden_dim()`.
    pub fn forward(&self, x: &Vector, position: usize, cache: &mut KvCache) -> Vector {
        let mut ws = Workspace::new();
        self.forward_ws(x, position, cache, &ThreadPool::single(), &mut ws)
    }

    /// Workspace variant of [`forward`](Self::forward): every intermediate
    /// (q/k/v, scores, head outputs) comes from `ws`, so after warm-up the
    /// call performs no heap allocation. QKV and output projections are
    /// row-partitioned across `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.hidden_dim()`.
    pub fn forward_ws(
        &self,
        x: &Vector,
        position: usize,
        cache: &mut KvCache,
        pool: &ThreadPool,
        ws: &mut Workspace,
    ) -> Vector {
        let d = self.hidden_dim();
        assert_eq!(x.len(), d, "attention input length mismatch");
        let head_dim = d / self.n_heads;

        let mut q = ws.take(d);
        let mut k = ws.take(d);
        let mut v = ws.take(d);
        gemv_into(&self.w_q, x, pool, &mut q);
        gemv_into(&self.w_k, x, pool, &mut k);
        gemv_into(&self.w_v, x, pool, &mut v);

        for h in 0..self.n_heads {
            let span = h * head_dim..(h + 1) * head_dim;
            Self::rope(&mut q.as_mut_slice()[span.clone()], position);
            Self::rope(&mut k.as_mut_slice()[span], position);
        }

        cache.push(k.as_slice(), v.as_slice());
        ws.give(k);
        ws.give(v);

        let scale = 1.0 / (head_dim as f32).sqrt();
        let seq = cache.len();
        let half_kv = cache.dtype() == KvDtype::F16;
        // Sized to the cache reservation so the buffer does not regrow (and
        // reallocate) as the context extends token by token.
        let mut scores_buf = ws.take(seq.max(cache.reserved_tokens()));
        let mut out = ws.take(d);
        out.fill(0.0);

        for h in 0..self.n_heads {
            let span = h * head_dim..(h + 1) * head_dim;
            let qh = &q.as_slice()[span.clone()];

            // Scores against every cached position (causal by construction).
            // F16 storage dequantizes in the accumulate — no materialized
            // f32 copy of the cached row.
            let scores = &mut scores_buf.as_mut_slice()[..seq];
            for (t, slot) in scores.iter_mut().enumerate() {
                let s: f32 = if half_kv {
                    let kh = &cache.key_h(t)[span.clone()];
                    qh.iter().zip(kh).map(|(a, b)| a * b.to_f32()).sum()
                } else {
                    let kh = &cache.key(t)[span.clone()];
                    qh.iter().zip(kh).map(|(a, b)| a * b).sum()
                };
                *slot = s * scale;
            }
            // Softmax (max-subtracted for stability).
            let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for s in scores.iter_mut() {
                *s = (*s - max).exp();
                denom += *s;
            }
            // Weighted sum of values.
            let out_h = &mut out.as_mut_slice()[span.clone()];
            for (t, w) in scores.iter().enumerate() {
                let w = w / denom;
                if half_kv {
                    let vh = &cache.value_h(t)[span.clone()];
                    for (o, vv) in out_h.iter_mut().zip(vh) {
                        *o += w * vv.to_f32();
                    }
                } else {
                    let vh = &cache.value(t)[span.clone()];
                    for (o, vv) in out_h.iter_mut().zip(vh) {
                        *o += w * vv;
                    }
                }
            }
        }
        ws.give(q);
        ws.give(scores_buf);

        let mut result = ws.take(d);
        gemv_into(&self.w_o, &out, pool, &mut result);
        ws.give(out);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_tensor::{gemv::gemv, Prng};

    fn random_attention(seed: u64, d: usize, heads: usize) -> Attention {
        let mut rng = Prng::seed(seed);
        let mut m = || Matrix::from_fn(d, d, |_, _| rng.normal(0.0, 0.15) as f32);
        Attention::new(m(), m(), m(), m(), heads)
    }

    #[test]
    fn single_token_attends_to_itself() {
        let attn = random_attention(1, 16, 2);
        let mut cache = KvCache::new();
        let x = Vector::from_fn(16, |i| (i as f32 * 0.7).sin());
        let out = attn.forward(&x, 0, &mut cache);
        assert_eq!(out.len(), 16);
        assert_eq!(cache.len(), 1);
        // With one position, softmax weight is exactly 1 → out = W_o · v.
        let v = gemv(&attn.w_v, &x);
        let expected = gemv(&attn.w_o, &v);
        for (a, b) in out.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn cache_grows_per_token() {
        let attn = random_attention(2, 16, 2);
        let mut cache = KvCache::new();
        for pos in 0..5 {
            let x = Vector::from_fn(16, |i| ((i + pos) as f32).cos());
            let _ = attn.forward(&x, pos, &mut cache);
        }
        assert_eq!(cache.len(), 5);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn rope_makes_attention_position_dependent() {
        // With a single cached position softmax renormalizes any score to 1,
        // so RoPE can only show up once the query attends over two or more
        // positions with different relative distances.
        let attn = random_attention(3, 16, 2);
        let x0 = Vector::from_fn(16, |i| (i as f32 * 0.3).sin());
        let x1 = Vector::from_fn(16, |i| (i as f32 * 0.9).cos());

        let mut c1 = KvCache::new();
        let _ = attn.forward(&x0, 0, &mut c1);
        let near = attn.forward(&x1, 1, &mut c1);

        let mut c2 = KvCache::new();
        let _ = attn.forward(&x0, 0, &mut c2);
        let far = attn.forward(&x1, 9, &mut c2);

        let diff: f32 = near
            .iter()
            .zip(far.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "RoPE had no effect: diff {diff}");
    }

    #[test]
    fn rope_preserves_norm() {
        let mut head: Vec<f32> = (0..8).map(|i| (i as f32) - 3.5).collect();
        let before: f32 = head.iter().map(|v| v * v).sum();
        Attention::rope(&mut head, 7);
        let after: f32 = head.iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-3);
    }

    #[test]
    fn flat_cache_stores_and_returns_positions() {
        let mut cache = KvCache::with_capacity(4, 8);
        assert_eq!(cache.reserved_tokens(), 8);
        cache.push(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        cache.push(&[9.0; 4], &[10.0; 4]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.key(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cache.value(1), &[10.0; 4]);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.reserved_tokens() >= 8, "capacity retained");
    }

    #[test]
    fn workspace_forward_is_bitwise_identical_to_plain_forward() {
        let attn = random_attention(9, 16, 2);
        let mut c1 = KvCache::new();
        let mut c2 = KvCache::with_capacity(16, 16);
        let mut ws = sparseinfer_tensor::Workspace::new();
        let pool = sparseinfer_tensor::ThreadPool::single();
        for pos in 0..6 {
            let x = Vector::from_fn(16, |i| ((i + pos * 3) as f32 * 0.21).sin());
            let plain = attn.forward(&x, pos, &mut c1);
            let via_ws = attn.forward_ws(&x, pos, &mut c2, &pool, &mut ws);
            assert_eq!(plain, via_ws, "position {pos}");
        }
    }

    #[test]
    fn paged_cache_attention_is_bitwise_identical_to_contiguous() {
        // The load-bearing property of the paged refactor: reading KV
        // through the block table returns the same floats in the same
        // order, so attention outputs are bit-identical across layouts —
        // including at block boundaries.
        let attn = random_attention(11, 16, 2);
        let pool = crate::kv::KvBlockPool::new(3); // deliberately unaligned
        let mut contiguous = KvCache::with_capacity(16, 16);
        let mut paged = KvCache::paged(&pool);
        assert!(paged.is_paged() && !contiguous.is_paged());
        let mut ws = sparseinfer_tensor::Workspace::new();
        let tp = sparseinfer_tensor::ThreadPool::single();
        for pos in 0..10 {
            let x = Vector::from_fn(16, |i| ((i * 5 + pos * 2) as f32 * 0.17).sin());
            let a = attn.forward_ws(&x, pos, &mut contiguous, &tp, &mut ws);
            let b = attn.forward_ws(&x, pos, &mut paged, &tp, &mut ws);
            assert_eq!(a, b, "position {pos}");
            ws.give(a);
            ws.give(b);
        }
        assert_eq!(paged.len(), 10);
        assert_eq!(paged.reserved_tokens(), 12, "4 blocks of 3 tokens");
        paged.clear();
        assert_eq!(pool.blocks_in_use(), 0, "clear returns blocks");
    }

    #[test]
    fn f16_paged_attention_is_layout_invariant_and_tracks_f32() {
        // Mirror of the f32 layout test at KvDtype::F16: the *rounding* is
        // fixed by the pushed values, so two f16 pools with different (and
        // deliberately unaligned) block sizes must produce bit-identical
        // outputs — the block table never changes what is read, only where
        // it lives. Against f32 storage the outputs agree to f16 precision.
        let attn = random_attention(17, 16, 2);
        let pool_a = crate::kv::KvBlockPool::with_budget_dtype(3, usize::MAX, KvDtype::F16);
        let pool_b = crate::kv::KvBlockPool::with_budget_dtype(64, usize::MAX, KvDtype::F16);
        let mut half_a = KvCache::paged(&pool_a);
        let mut half_b = KvCache::paged(&pool_b);
        let mut full = KvCache::with_capacity(16, 16);
        assert_eq!(half_a.dtype(), KvDtype::F16);
        assert_eq!(full.dtype(), KvDtype::F32);
        let mut ws = sparseinfer_tensor::Workspace::new();
        let tp = sparseinfer_tensor::ThreadPool::single();
        let mut max_rel = 0.0f32;
        for pos in 0..10 {
            let x = Vector::from_fn(16, |i| ((i * 5 + pos * 2) as f32 * 0.17).sin());
            let a = attn.forward_ws(&x, pos, &mut half_a, &tp, &mut ws);
            let b = attn.forward_ws(&x, pos, &mut half_b, &tp, &mut ws);
            let f = attn.forward_ws(&x, pos, &mut full, &tp, &mut ws);
            assert_eq!(a, b, "position {pos}: layout must not matter");
            let norm: f32 = f.iter().map(|v| v.abs()).sum::<f32>() + 1e-6;
            let diff: f32 = a.iter().zip(f.iter()).map(|(p, q)| (p - q).abs()).sum();
            max_rel = max_rel.max(diff / norm);
            ws.give(a);
            ws.give(b);
            ws.give(f);
        }
        assert!(max_rel < 2e-3, "f16 KV drifted {max_rel} from f32");
        assert_eq!(
            pool_a.in_use_bytes(),
            2 * pool_a.blocks_in_use() as u64 * 3 * 16 * 2,
            "f16 bytes accounted at 2 per element"
        );
    }

    #[test]
    fn push_from_bridges_cache_kinds() {
        let pool = crate::kv::KvBlockPool::with_budget_dtype(2, usize::MAX, KvDtype::F16);
        let mut src = KvCache::paged(&pool);
        src.push(&[0.1, 0.2], &[0.3, 0.4]);
        src.push(&[1.1, 1.2], &[1.3, 1.4]);
        let mut dst = KvCache::paged(&pool);
        dst.push_from(&src, 0);
        dst.push_from(&src, 1);
        assert_eq!(dst.key_h(1), src.key_h(1));
        assert_eq!(dst.value_h(0), src.value_h(0));

        let mut flat_src = KvCache::new();
        flat_src.push(&[9.0], &[8.0]);
        let mut flat_dst = KvCache::with_capacity(1, 4);
        flat_dst.push_from(&flat_src, 0);
        assert_eq!(flat_dst.key(0), &[9.0]);

        // Paged f16 → contiguous f32 widens to exactly the stored words
        // (the speculative draft-resync path under an f16 serving pool).
        let mut flat = KvCache::with_capacity(2, 4);
        flat.push_from(&src, 1);
        assert_eq!(
            flat.key(0),
            &[src.key_h(1)[0].to_f32(), src.key_h(1)[1].to_f32()]
        );
        assert_eq!(
            flat.value(0),
            &[src.value_h(1)[0].to_f32(), src.value_h(1)[1].to_f32()]
        );
    }

    #[test]
    fn attention_output_is_finite_over_long_contexts() {
        let attn = random_attention(4, 32, 4);
        let mut cache = KvCache::new();
        for pos in 0..64 {
            let x = Vector::from_fn(32, |i| ((i * 7 + pos * 3) as f32 * 0.13).sin());
            let out = attn.forward(&x, pos, &mut cache);
            assert!(out.iter().all(|v| v.is_finite()), "position {pos}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_head_count_panics() {
        let _ = random_attention(5, 16, 3);
    }
}
