//! Paged KV-cache storage: reference-counted, fixed-size token blocks from
//! a shared pool, with copy-on-write block tables and a prefix index.
//!
//! The serving-scale problem with a contiguous
//! [`KvCache`](crate::attention::KvCache): a request that *might* generate
//! `max_new` tokens reserves `prompt + max_new` positions of cache up
//! front, per layer — memory proportional to the *worst case*, even when
//! generation stops after three tokens. Under churning traffic that
//! over-reservation, multiplied by concurrent requests, is the capacity
//! wall (the same one vLLM's PagedAttention removes for GPU serving).
//!
//! This module splits KV storage into:
//!
//! * [`KvBlockPool`] — a shared, thread-safe allocator of **fixed-size
//!   token blocks** (`block_tokens` positions each). Released blocks go on
//!   a free list and are recycled, so pool capacity tracks *peak live*
//!   usage, never cumulative traffic. An optional block budget
//!   ([`KvBlockPool::with_budget`]) turns the pool into the admission
//!   throttle the scheduler's capacity control is built on.
//! * [`SharedKvBlock`] — one **reference-counted** block. Many caches (and
//!   the [`PrefixIndex`]) can hold the same physical block at once; its
//!   storage returns to the pool's free list only when the *last* referrer
//!   drops. The pool's `in_use` accounting counts physical blocks, so a
//!   block shared by ten sessions costs its bytes once.
//! * [`PagedKvCache`] — one sequence's view: a **copy-on-write block
//!   table** that grows one block at a time, lazily, as tokens are
//!   actually produced. Shared blocks (attached from the prefix index, or
//!   aliased by a [`Clone`](PagedKvCache::clone)) are read-only through
//!   this table; the first write into a shared *partial tail* block forks
//!   a private copy, and writes past a shared boundary allocate fresh
//!   private blocks — a fork never mutates the shared copy.
//! * [`PrefixIndex`] — a map over token-id runs (keyed per model) through
//!   which a full block of prompt KV, once computed, is **published** and
//!   re-attached to later sessions with the same prompt prefix. Retained
//!   entries whose blocks nobody else references are evicted LRU-first
//!   under a configurable cap.
//!
//! Reads go through the block table (`t → block[t / block_tokens]`), but
//! deliver exactly the same `&[f32]` slices in exactly the same order as
//! the contiguous layout, so every attention kernel is bit-identical over
//! either storage — the compatibility wrapper in
//! [`attention`](crate::attention) dispatches between them.
//!
//! A pool stores its elements in one [`KvDtype`] — full-precision `f32`
//! (the default) or half-precision [`F16`] words
//! ([`KvBlockPool::with_budget_dtype`]), which halves every byte figure
//! (`memory_bytes`, `in_use_bytes`, swap sizes) and so doubles how many
//! tokens a given byte budget holds. Callers always *push* `f32` vectors;
//! conversion happens at the block boundary, and an `F16` pool's contents
//! are read back through [`PagedKvCache::key_h`]/[`value_h`](PagedKvCache::value_h).
//! All sharing semantics — COW, prefix attach, swap/restore, truncate —
//! are dtype-independent, and because `f16 → f32 → f16` round-trips
//! losslessly, a swap/restore cycle is bit-identical in either dtype.

use sparseinfer_tensor::F16;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Element type of one [`KvBlockPool`]'s storage.
///
/// Fixed at pool construction: one pool, one dtype, like one pool, one
/// model dimension. `F16` halves KV bytes per token — the block *count*
/// budget is unchanged, but every byte-denominated figure (pool footprint,
/// swap sizes, admission estimates) halves, so a byte budget holds twice
/// the tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KvDtype {
    /// Full-precision `f32` elements (the seed behavior).
    #[default]
    F32,
    /// Half-precision [`F16`] elements: pushes round-to-nearest-even at
    /// the block boundary, reads return the stored `F16` words.
    F16,
}

impl KvDtype {
    /// Bytes of one stored scalar.
    pub fn bytes_per_elem(self) -> usize {
        match self {
            KvDtype::F32 => std::mem::size_of::<f32>(),
            KvDtype::F16 => std::mem::size_of::<F16>(),
        }
    }

    /// Lower-case label used by CLI flags and `/stats` sections.
    pub fn label(self) -> &'static str {
        match self {
            KvDtype::F32 => "f32",
            KvDtype::F16 => "f16",
        }
    }
}

/// Default tokens per KV block: small enough that a short answer wastes at
/// most a fraction of a block per layer, large enough that the block table
/// stays tiny for long contexts.
pub const DEFAULT_BLOCK_TOKENS: usize = 16;

/// Raw storage of one block, as recycled through the pool's free list:
/// the key/value buffers keep their allocation between owners. The variant
/// always matches the owning pool's [`KvDtype`].
#[derive(Debug, Clone)]
enum KvBlockData {
    F32 { keys: Vec<f32>, values: Vec<f32> },
    F16 { keys: Vec<F16>, values: Vec<F16> },
}

impl KvBlockData {
    fn with_capacity(dtype: KvDtype, cap: usize) -> Self {
        match dtype {
            KvDtype::F32 => KvBlockData::F32 {
                keys: Vec::with_capacity(cap),
                values: Vec::with_capacity(cap),
            },
            KvDtype::F16 => KvBlockData::F16 {
                keys: Vec::with_capacity(cap),
                values: Vec::with_capacity(cap),
            },
        }
    }

    fn dtype(&self) -> KvDtype {
        match self {
            KvBlockData::F32 { .. } => KvDtype::F32,
            KvBlockData::F16 { .. } => KvDtype::F16,
        }
    }

    /// Stored scalars per buffer (`keys` and `values` always agree).
    fn elems(&self) -> usize {
        match self {
            KvBlockData::F32 { keys, .. } => keys.len(),
            KvBlockData::F16 { keys, .. } => keys.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            KvBlockData::F32 { keys, values } => {
                keys.clear();
                values.clear();
            }
            KvBlockData::F16 { keys, values } => {
                keys.clear();
                values.clear();
            }
        }
    }

    fn truncate(&mut self, elems: usize) {
        match self {
            KvBlockData::F32 { keys, values } => {
                keys.truncate(elems);
                values.truncate(elems);
            }
            KvBlockData::F16 { keys, values } => {
                keys.truncate(elems);
                values.truncate(elems);
            }
        }
    }

    /// Appends one position of `f32` key/value vectors, converting at the
    /// boundary when the block stores `F16` (round-to-nearest-even).
    fn push_position(&mut self, key: &[f32], value: &[f32]) {
        match self {
            KvBlockData::F32 { keys, values } => {
                keys.extend_from_slice(key);
                values.extend_from_slice(value);
            }
            KvBlockData::F16 { keys, values } => {
                keys.extend(key.iter().map(|v| F16::from_f32(*v)));
                values.extend(value.iter().map(|v| F16::from_f32(*v)));
            }
        }
    }

    /// Appends `elems` scalars starting at `start` from `src`, as a raw
    /// dtype-preserving copy (COW forks, swap-out, draft resync).
    fn extend_range_from(&mut self, src: &KvBlockData, start: usize, elems: usize) {
        match (self, src) {
            (
                KvBlockData::F32 { keys, values },
                KvBlockData::F32 {
                    keys: sk,
                    values: sv,
                },
            ) => {
                keys.extend_from_slice(&sk[start..start + elems]);
                values.extend_from_slice(&sv[start..start + elems]);
            }
            (
                KvBlockData::F16 { keys, values },
                KvBlockData::F16 {
                    keys: sk,
                    values: sv,
                },
            ) => {
                keys.extend_from_slice(&sk[start..start + elems]);
                values.extend_from_slice(&sv[start..start + elems]);
            }
            _ => unreachable!("one pool holds one dtype"),
        }
    }
}

/// One live, fixed-size block of KV storage: up to `block_tokens` positions
/// of keys and values, filled front to back. Returns its buffers to the
/// owning pool's free list when dropped — which, behind the [`Arc`] in
/// [`SharedKvBlock`], happens exactly when the last referrer lets go.
#[derive(Debug)]
struct PooledKvBlock {
    data: KvBlockData,
    /// Per-position vector width (fixed at allocation).
    dim: usize,
    /// The pool the storage came from and returns to.
    shared: Arc<PoolShared>,
}

impl Drop for PooledKvBlock {
    fn drop(&mut self) {
        let mut data = std::mem::replace(
            &mut self.data,
            KvBlockData::F32 {
                keys: Vec::new(),
                values: Vec::new(),
            },
        );
        data.clear();
        let mut state = PoolShared::state(&self.shared);
        state.free.push(data);
        state.in_use -= 1;
    }
}

/// A reference-counted KV block handle.
///
/// Cloning the handle shares the **same physical block** (the pool's
/// `in_use` count does not move); the storage is recycled only when every
/// clone — block tables and [`PrefixIndex`] entries alike — has dropped.
/// Shared blocks are read-only: [`PagedKvCache`] forks a private copy
/// before its first write into a block with other referrers.
#[derive(Debug, Clone)]
pub struct SharedKvBlock {
    inner: Arc<PooledKvBlock>,
}

impl SharedKvBlock {
    /// Positions currently stored in this block.
    pub fn tokens(&self) -> usize {
        self.inner
            .data
            .elems()
            .checked_div(self.inner.dim)
            .unwrap_or(0)
    }

    /// How many handles (caches, prefix-index entries) reference this
    /// physical block right now — diagnostics for sharing tests.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Whether this handle is the block's only referrer (safe to mutate).
    fn is_unique(&self) -> bool {
        // No `Weak` handles are ever created, so a strong count of one is
        // exclusive ownership.
        Arc::strong_count(&self.inner) == 1
    }

    fn get_mut(&mut self) -> Option<&mut PooledKvBlock> {
        Arc::get_mut(&mut self.inner)
    }

    fn belongs_to(&self, pool: &KvBlockPool) -> bool {
        Arc::ptr_eq(&self.inner.shared, &pool.shared)
    }
}

#[derive(Debug, Default)]
struct PoolState {
    free: Vec<KvBlockData>,
    /// Blocks created and not yet dropped (free + in use).
    created: usize,
    /// Physical blocks currently held by caches or the prefix index
    /// (shared blocks count **once**, however many referrers they have).
    in_use: usize,
    /// KV dimension, established by the first allocation (0 = none yet).
    dim: usize,
}

#[derive(Debug)]
struct PoolShared {
    block_tokens: usize,
    max_blocks: usize,
    dtype: KvDtype,
    state: Mutex<PoolState>,
}

impl PoolShared {
    fn state(shared: &Arc<PoolShared>) -> std::sync::MutexGuard<'_, PoolState> {
        // Poison-tolerant: every mutation in the critical sections leaves
        // PoolState valid on its own (the budget/dimension asserts fire
        // between them, never mid-update), so a poisoned lock still guards
        // a consistent state — and block `Drop`s must be able to return
        // storage during the very unwind that poisoned it.
        shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A shared, thread-safe pool of fixed-size KV blocks.
///
/// Cloning the pool clones a handle (`Arc`): every [`PagedKvCache`] built
/// from any clone allocates from, and releases to, the same free list.
/// Allocation takes a mutex, but only once per `block_tokens` produced
/// tokens per layer — never per token read (caches hold [`SharedKvBlock`]
/// handles outright, so attention reads are lock-free).
///
/// # Example
///
/// ```
/// use sparseinfer_model::kv::{KvBlockPool, PagedKvCache};
///
/// let pool = KvBlockPool::new(4);
/// let mut cache = PagedKvCache::new(&pool);
/// cache.push(&[1.0, 2.0], &[3.0, 4.0]);
/// assert_eq!(cache.key(0), &[1.0, 2.0]);
/// assert_eq!(pool.blocks_in_use(), 1);
/// drop(cache);
/// assert_eq!(pool.blocks_in_use(), 0); // blocks return on drop
/// assert_eq!(pool.blocks_created(), 1); // …and are recycled, not freed
/// ```
#[derive(Debug, Clone)]
pub struct KvBlockPool {
    shared: Arc<PoolShared>,
}

impl KvBlockPool {
    /// An unbounded pool with `block_tokens` positions per block.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    pub fn new(block_tokens: usize) -> Self {
        Self::with_budget(block_tokens, usize::MAX)
    }

    /// A pool capped at `max_blocks` total blocks — the capacity that
    /// admission control budgets against.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` or `max_blocks` is zero.
    pub fn with_budget(block_tokens: usize, max_blocks: usize) -> Self {
        Self::with_budget_dtype(block_tokens, max_blocks, KvDtype::F32)
    }

    /// A budgeted pool whose blocks store `dtype` elements. `KvDtype::F16`
    /// halves every byte figure; the block-count budget is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` or `max_blocks` is zero.
    pub fn with_budget_dtype(block_tokens: usize, max_blocks: usize, dtype: KvDtype) -> Self {
        assert!(block_tokens > 0, "block_tokens must be positive");
        assert!(max_blocks > 0, "max_blocks must be positive");
        Self {
            shared: Arc::new(PoolShared {
                block_tokens,
                max_blocks,
                dtype,
                state: Mutex::new(PoolState::default()),
            }),
        }
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> usize {
        self.shared.block_tokens
    }

    /// Element type of this pool's blocks.
    pub fn dtype(&self) -> KvDtype {
        self.shared.dtype
    }

    /// The block budget (`usize::MAX` when unbounded).
    pub fn max_blocks(&self) -> usize {
        self.shared.max_blocks
    }

    /// Blocks needed to hold `tokens` positions of one sequence in one
    /// layer's cache.
    pub fn blocks_for_tokens(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.shared.block_tokens)
    }

    /// Physical blocks currently held by live caches or a prefix index.
    /// A block shared by many referrers counts **once**.
    pub fn blocks_in_use(&self) -> usize {
        self.state().in_use
    }

    /// Blocks sitting on the free list, ready for reuse.
    pub fn blocks_free(&self) -> usize {
        self.state().free.len()
    }

    /// Blocks created over the pool's lifetime and not yet dropped
    /// (free + in use). Bounded by **peak** concurrent usage, not by how
    /// many requests the pool has ever served.
    pub fn blocks_created(&self) -> usize {
        self.state().created
    }

    /// Blocks still available under the budget (free-list blocks plus
    /// blocks that may still be created).
    pub fn available_blocks(&self) -> usize {
        self.shared.max_blocks.saturating_sub(self.state().in_use)
    }

    /// Bytes of one block (keys + values), once the KV dimension is known.
    fn block_bytes(&self, dim: usize) -> u64 {
        2 * (self.shared.block_tokens * dim * self.shared.dtype.bytes_per_elem()) as u64
    }

    /// Total bytes of every block the pool has created (free + in use) —
    /// the pool's resident footprint.
    pub fn memory_bytes(&self) -> u64 {
        let state = self.state();
        state.created as u64 * self.block_bytes(state.dim)
    }

    /// Bytes of the physical blocks currently held by live caches or a
    /// prefix index — the O(live tokens) quantity admission control keeps
    /// bounded. Shared blocks are counted **once**, not per referrer, so
    /// serving-layer memory estimates must add this exactly once (never
    /// per session).
    pub fn in_use_bytes(&self) -> u64 {
        let state = self.state();
        state.in_use as u64 * self.block_bytes(state.dim)
    }

    fn state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        PoolShared::state(&self.shared)
    }

    /// Hands out one private (refcount-1) block for `dim`-sized
    /// keys/values.
    ///
    /// # Panics
    ///
    /// Panics if the budget is exhausted (a serving layer must gate
    /// admission on [`available_blocks`](Self::available_blocks) so this
    /// never fires) or if `dim` disagrees with earlier allocations.
    fn alloc(&self, dim: usize) -> SharedKvBlock {
        let data = {
            let mut state = self.state();
            if state.dim == 0 {
                state.dim = dim;
            } else {
                assert_eq!(
                    state.dim, dim,
                    "KV block pool is dimension-{} but a cache pushed dimension-{dim} vectors \
                     (one pool serves one model)",
                    state.dim
                );
            }
            let data = match state.free.pop() {
                Some(data) => data,
                None => {
                    assert!(
                        state.created < self.shared.max_blocks,
                        "KV block budget exhausted ({} blocks): admission control must keep \
                         worst-case reservations within the pool budget",
                        self.shared.max_blocks
                    );
                    state.created += 1;
                    let cap = self.shared.block_tokens * dim;
                    KvBlockData::with_capacity(self.shared.dtype, cap)
                }
            };
            state.in_use += 1;
            data
        };
        SharedKvBlock {
            inner: Arc::new(PooledKvBlock {
                data,
                dim,
                shared: Arc::clone(&self.shared),
            }),
        }
    }

    /// Allocates a private block and copies `src`'s contents into it —
    /// the copy-on-write fork.
    fn alloc_copy(&self, src: &SharedKvBlock) -> SharedKvBlock {
        self.alloc_copy_prefix(src, src.tokens())
    }

    /// Allocates a private block and copies the first `tokens` positions of
    /// `src` into it — the copy-on-write fork of a truncation that lands
    /// mid-way through a shared block.
    fn alloc_copy_prefix(&self, src: &SharedKvBlock, tokens: usize) -> SharedKvBlock {
        let dim = src.inner.dim;
        let mut copy = self.alloc(dim);
        let block = copy.get_mut().expect("freshly allocated block is private");
        block
            .data
            .extend_range_from(&src.inner.data, 0, tokens * dim);
        copy
    }
}

/// One sequence's paged KV cache: a lazily grown, copy-on-write block
/// table over a shared [`KvBlockPool`].
///
/// Tokens append in order; every `block_tokens`-th push allocates one more
/// block from the pool. Blocks attached from a [`PrefixIndex`] hit (or
/// aliased by [`Clone`](Self::clone)) are *shared* — reads go straight
/// through, but the first push into a shared partial tail forks a private
/// copy, so a fork never mutates the shared block. [`clear`](Self::clear)
/// and `Drop` release every handle; the physical storage returns to the
/// pool when the last referrer is gone, so a retired request's private KV
/// memory is reusable immediately.
#[derive(Debug)]
pub struct PagedKvCache {
    pool: KvBlockPool,
    blocks: Vec<SharedKvBlock>,
    /// KV dimension, established by the first push (0 = none yet).
    dim: usize,
    /// Cached positions.
    len: usize,
}

impl PagedKvCache {
    /// An empty cache over `pool` (no blocks held yet).
    pub fn new(pool: &KvBlockPool) -> Self {
        Self {
            pool: pool.clone(),
            blocks: Vec::new(),
            dim: 0,
            len: 0,
        }
    }

    /// A cache whose context starts as `blocks` — **full**, shared blocks
    /// (typically a [`PrefixIndex`] hit) covering
    /// `blocks.len() × block_tokens` positions. The attached blocks are
    /// aliased, not copied: no new physical block is allocated, and the
    /// new cache must never write into them (pushes go past the attached
    /// boundary into fresh private blocks by construction).
    ///
    /// # Panics
    ///
    /// Panics if any block is not completely full, came from a different
    /// pool, or disagrees with the others on the KV dimension.
    pub fn with_prefix(pool: &KvBlockPool, blocks: Vec<SharedKvBlock>) -> Self {
        let bt = pool.block_tokens();
        let mut dim = 0usize;
        for (i, block) in blocks.iter().enumerate() {
            assert!(
                block.belongs_to(pool),
                "prefix block {i} belongs to a different pool"
            );
            assert_eq!(
                block.tokens(),
                bt,
                "prefix block {i} is partial: only full blocks are sharable"
            );
            if dim == 0 {
                dim = block.inner.dim;
            } else {
                assert_eq!(dim, block.inner.dim, "prefix block {i} dimension mismatch");
            }
        }
        let len = blocks.len() * bt;
        Self {
            pool: pool.clone(),
            blocks,
            dim,
            len,
        }
    }

    /// The pool this cache allocates from.
    pub fn pool(&self) -> &KvBlockPool {
        &self.pool
    }

    /// Element type of this cache's storage (the pool's dtype).
    pub fn dtype(&self) -> KvDtype {
        self.pool.dtype()
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Blocks currently referenced by this cache's block table (shared
    /// blocks included).
    pub fn blocks_held(&self) -> usize {
        self.blocks.len()
    }

    /// The block table itself — shared handles in position order, for
    /// publication into a [`PrefixIndex`] and sharing diagnostics.
    pub fn block_refs(&self) -> &[SharedKvBlock] {
        &self.blocks
    }

    /// Positions the held blocks can store before the next allocation.
    pub fn capacity_tokens(&self) -> usize {
        self.blocks.len() * self.pool.block_tokens()
    }

    /// Appends one position, allocating a block from the pool when the
    /// current one is full — and forking a private copy first if the tail
    /// block is shared (copy-on-write; the shared copy is never mutated).
    ///
    /// # Panics
    ///
    /// Panics if `key` and `value` differ in length or disagree with the
    /// dimension established by earlier pushes, or if the pool's block
    /// budget is exhausted.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), value.len(), "key/value length mismatch");
        self.establish_dim(key.len());
        self.writable_tail().push_position(key, value);
        self.len += 1;
    }

    /// Appends position `t` of `src` as a **raw, dtype-preserving copy** —
    /// no f32 round trip, so an `F16` position lands bit-identical. This is
    /// the cross-cache transfer primitive (speculative draft resync).
    ///
    /// # Panics
    ///
    /// Panics if the two caches' pools disagree on dtype, if the dimensions
    /// disagree, or if `t >= src.len()`.
    pub fn push_from(&mut self, src: &PagedKvCache, t: usize) {
        assert_eq!(
            self.pool.dtype(),
            src.pool.dtype(),
            "push_from requires matching KV dtypes"
        );
        let (block, offset) = src.slot(t);
        let src_data = &src.blocks[block].inner.data;
        self.establish_dim(src.dim);
        self.writable_tail()
            .extend_range_from(src_data, offset, src.dim);
        self.len += 1;
    }

    fn establish_dim(&mut self, dim: usize) {
        if self.dim == 0 {
            assert!(dim > 0, "kv dimension must be positive");
            self.dim = dim;
        } else {
            assert_eq!(dim, self.dim, "kv dimension mismatch");
        }
    }

    /// The tail block's storage, ready for one more position: allocates
    /// when full, and forks a shared tail first (copy-on-write — a COW
    /// clone or partial-prefix attach is never mutated).
    fn writable_tail(&mut self) -> &mut KvBlockData {
        if self.len == self.capacity_tokens() {
            self.blocks.push(self.pool.alloc(self.dim));
        }
        let tail = self.blocks.last_mut().expect("block allocated above");
        if !tail.is_unique() {
            *tail = self.pool.alloc_copy(tail);
        }
        let block = tail.get_mut().expect("tail is private after the fork");
        &mut block.data
    }

    fn slot(&self, t: usize) -> (usize, usize) {
        assert!(
            t < self.len,
            "position {t} out of bounds (len {})",
            self.len
        );
        let bt = self.pool.block_tokens();
        (t / bt, (t % bt) * self.dim)
    }

    /// The key vector cached at position `t` (pools storing `f32`).
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`, or if the pool stores `F16` — readers
    /// of a half-precision pool go through [`key_h`](Self::key_h).
    pub fn key(&self, t: usize) -> &[f32] {
        let (block, offset) = self.slot(t);
        match &self.blocks[block].inner.data {
            KvBlockData::F32 { keys, .. } => &keys[offset..offset + self.dim],
            KvBlockData::F16 { .. } => panic!("f16 KV cache: read keys via key_h"),
        }
    }

    /// The value vector cached at position `t` (pools storing `f32`).
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`, or if the pool stores `F16` — readers
    /// of a half-precision pool go through [`value_h`](Self::value_h).
    pub fn value(&self, t: usize) -> &[f32] {
        let (block, offset) = self.slot(t);
        match &self.blocks[block].inner.data {
            KvBlockData::F32 { values, .. } => &values[offset..offset + self.dim],
            KvBlockData::F16 { .. } => panic!("f16 KV cache: read values via value_h"),
        }
    }

    /// The key vector cached at position `t` as stored `F16` words (pools
    /// storing `F16`).
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()` or if the pool stores `f32`.
    pub fn key_h(&self, t: usize) -> &[F16] {
        let (block, offset) = self.slot(t);
        match &self.blocks[block].inner.data {
            KvBlockData::F16 { keys, .. } => &keys[offset..offset + self.dim],
            KvBlockData::F32 { .. } => panic!("f32 KV cache: read keys via key"),
        }
    }

    /// The value vector cached at position `t` as stored `F16` words (pools
    /// storing `F16`).
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()` or if the pool stores `f32`.
    pub fn value_h(&self, t: usize) -> &[F16] {
        let (block, offset) = self.slot(t);
        match &self.blocks[block].inner.data {
            KvBlockData::F16 { values, .. } => &values[offset..offset + self.dim],
            KvBlockData::F32 { .. } => panic!("f32 KV cache: read values via value"),
        }
    }

    /// Rolls the cache back to `len` positions (a no-op when `len` is not
    /// smaller than the current length). Whole blocks past the new boundary
    /// are released — their physical storage returns to the pool the moment
    /// this cache was the last referrer — and a partial tail is cut down in
    /// place when private, or **forked** first when shared: a truncated
    /// fork never mutates a block other referrers (a COW clone, the prefix
    /// index) still read.
    ///
    /// This is the rollback primitive of speculative decoding: rejected
    /// draft positions are discarded without disturbing the accepted
    /// context, bit-for-bit.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        if len == 0 {
            self.clear();
            return;
        }
        let bt = self.pool.block_tokens();
        let keep = len.div_ceil(bt);
        self.blocks.truncate(keep);
        // Tokens the boundary block must keep (1..=block_tokens).
        let tail_tokens = len - (keep - 1) * bt;
        let tail = self.blocks.last_mut().expect("len > 0 keeps a block");
        if tail.tokens() > tail_tokens {
            if tail.is_unique() {
                let block = tail.get_mut().expect("unique tail");
                let dim = block.dim;
                block.data.truncate(tail_tokens * dim);
            } else {
                // Copy-on-write: other referrers keep the full block.
                *tail = self.pool.alloc_copy_prefix(tail, tail_tokens);
            }
        }
        self.len = len;
    }

    /// Releases every block handle and resets to an empty context.
    /// Physical blocks whose last referrer this was return to the pool.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.len = 0;
    }

    /// Bytes of KV **content** this cache currently holds (`len` positions
    /// of keys plus values) — the size of the cold buffer a
    /// [`swap_out`](Self::swap_out) would produce, counting shared blocks
    /// as if they were private (a swapped cache is fully self-contained).
    pub fn content_bytes(&self) -> u64 {
        2 * (self.len * self.dim * self.pool.dtype().bytes_per_elem()) as u64
    }

    /// Swaps this cache out to a cold buffer: copies every cached position
    /// (shared prefix blocks included — the cold copy is self-contained)
    /// and releases **all** block handles, returning the physical storage
    /// of every privately held block to the pool immediately. The cache is
    /// left empty but attached to its pool; [`restore`](Self::restore)
    /// brings the exact same contents back into freshly allocated private
    /// blocks. Copies are raw dtype-preserving moves, so a restored cache
    /// reads bit-identically to the cache that was swapped out — in `F16`
    /// pools too (the cold words are the stored half-precision words).
    pub fn swap_out(&mut self) -> SwappedKvCache {
        let mut data = KvBlockData::with_capacity(self.pool.dtype(), self.len * self.dim);
        for block in &self.blocks {
            data.extend_range_from(&block.inner.data, 0, block.inner.data.elems());
        }
        debug_assert_eq!(
            data.elems(),
            self.len * self.dim,
            "blocks cover len exactly"
        );
        let swapped = SwappedKvCache {
            data,
            dim: self.dim,
            len: self.len,
        };
        self.blocks.clear();
        self.len = 0;
        swapped
    }

    /// Restores a previously swapped-out context into this (empty) cache:
    /// allocates fresh private blocks from the pool and copies the cold
    /// buffer back, position by position. After restore the cache holds
    /// exactly the swapped contents — same length, same vectors — in
    /// all-private blocks (shared prefix attachments do not survive a
    /// swap/restore cycle; they are rebuilt as private copies).
    ///
    /// # Panics
    ///
    /// Panics if the cache is not empty, if the cold buffer's dtype does
    /// not match the pool's, or if the pool's block budget cannot cover the
    /// restored blocks (a serving layer must reserve capacity before
    /// restoring).
    pub fn restore(&mut self, swapped: &SwappedKvCache) {
        assert!(self.is_empty(), "restore requires an empty cache");
        assert_eq!(
            swapped.data.dtype(),
            self.pool.dtype(),
            "swap/restore dtype mismatch (one pool, one dtype)"
        );
        if swapped.len == 0 {
            return;
        }
        let dim = swapped.dim;
        self.establish_dim(dim);
        for t in 0..swapped.len {
            self.writable_tail()
                .extend_range_from(&swapped.data, t * dim, dim);
            self.len += 1;
        }
    }
}

/// The cold buffer of one swapped-out [`PagedKvCache`]: a flat,
/// self-contained copy of its keys and values, holding **no** pool blocks
/// (the swapped cache's physical storage went back to the free list).
/// Produced by [`PagedKvCache::swap_out`], consumed by
/// [`PagedKvCache::restore`]; [`bytes`](Self::bytes) is the cold footprint
/// a serving layer accounts against its swap budget.
#[derive(Debug, Clone)]
pub struct SwappedKvCache {
    /// Dtype-matched words (an `F16` cache swaps out half-precision words,
    /// so the cold footprint is honest).
    data: KvBlockData,
    dim: usize,
    len: usize,
}

impl SwappedKvCache {
    /// Positions held in the cold buffer.
    pub fn tokens(&self) -> usize {
        self.len
    }

    /// Element type of the cold words.
    pub fn dtype(&self) -> KvDtype {
        self.data.dtype()
    }

    /// Bytes of the cold buffer (keys plus values).
    pub fn bytes(&self) -> u64 {
        (2 * self.data.elems() * self.data.dtype().bytes_per_elem()) as u64
    }
}

impl Clone for PagedKvCache {
    /// Copy-on-write clone: the copy shares every block with the original
    /// (no physical allocation, the pool's `in_use` count is unchanged).
    /// The first push on either side into the shared partial tail forks a
    /// private copy of just that block; full shared blocks are never
    /// touched by either side again.
    fn clone(&self) -> Self {
        Self {
            pool: self.pool.clone(),
            blocks: self.blocks.clone(),
            dim: self.dim,
            len: self.len,
        }
    }
}

/// A prefix-cache hit: shared blocks covering the first
/// [`tokens`](Self::tokens) positions of a prompt, per layer.
#[derive(Debug, Clone)]
pub struct PrefixHit {
    /// Prompt positions the attached blocks cover (a multiple of the
    /// pool's `block_tokens`).
    pub tokens: usize,
    /// `layer_blocks[layer]` holds that layer's shared blocks, in
    /// position order — one entry per model layer.
    pub layer_blocks: Vec<Vec<SharedKvBlock>>,
}

impl PrefixHit {
    /// Total shared block handles across every layer.
    pub fn total_blocks(&self) -> usize {
        self.layer_blocks.iter().map(Vec::len).sum()
    }
}

/// Key of one published block boundary: the model it was computed on
/// (pointer identity — stable for the serving scope that owns the index,
/// see [`PrefixIndex::lookup`]), the id of the **parent** boundary's
/// entry (0 for the first block), and the token ids of **this block's run
/// only**. Parent-chaining makes full-prefix equality hold by induction
/// while keeping key size O(`block_tokens`) per boundary — a walk over an
/// `L`-token prefix copies and hashes O(`L`) tokens total, not O(`L²`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PrefixKey {
    model: usize,
    parent: u64,
    tokens: Box<[u32]>,
}

/// One published block boundary: the `i`-th block of every layer for a
/// given token run of length `(i + 1) × block_tokens`.
#[derive(Debug)]
struct PrefixEntry {
    /// This boundary's identity, referenced by its children's keys. Ids
    /// are never reused, so an evicted boundary's children can never be
    /// re-parented onto an unrelated later entry.
    id: u64,
    /// `blocks[layer]` is that layer's block for this boundary.
    blocks: Vec<SharedKvBlock>,
    /// LRU stamp (monotonic use counter, not wall time).
    stamp: u64,
}

impl PrefixEntry {
    /// Whether the index is this entry's only referrer (evictable).
    fn is_unreferenced(&self) -> bool {
        self.blocks.iter().all(|b| b.ref_count() == 1)
    }
}

/// An index of published prompt-prefix KV blocks, keyed by token-id runs.
///
/// Serving layers publish the full blocks of a request's **densely
/// prefilled** prompt region here once computed; later requests whose
/// prompts start with the same token run re-attach those blocks instead of
/// recomputing and re-storing them — prefill work and KV memory become
/// O(unique tokens) instead of O(requests × tokens).
///
/// Entries are stored per block boundary and chained by parent id (each
/// key holds only its own block’s tokens), so two
/// prompts sharing only their first block still share that block, and
/// both lookup and publication over an `L`-token prefix cost O(`L`)
/// token copies/hashes total. Retained entries keep their blocks' storage
/// alive in the pool; entries nobody else references are evicted
/// LRU-first through [`evict_unreferenced_to`](Self::evict_unreferenced_to).
/// Entries whose blocks are still attached to live sessions are never
/// evicted.
///
/// The index is single-threaded by design (the scheduler owns it and
/// touches it only between decode ticks); the blocks it hands out are
/// `Send + Sync` and read lock-free from worker threads.
#[derive(Debug, Default)]
pub struct PrefixIndex {
    entries: HashMap<PrefixKey, PrefixEntry>,
    /// Monotonic use counter backing the LRU stamps.
    clock: u64,
    /// Boundary-id generator (0 is reserved for "no parent").
    next_id: u64,
}

impl PrefixIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of published block boundaries (entries).
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total block handles the index retains (each physical block appears
    /// in exactly one entry, so this is also a physical count).
    pub fn retained_blocks(&self) -> usize {
        self.entries.values().map(|e| e.blocks.len()).sum()
    }

    /// Retained blocks whose **only** referrer is the index — the blocks
    /// the LRU cap applies to. Blocks still attached to live sessions are
    /// pinned and excluded.
    pub fn unreferenced_blocks(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.is_unreferenced())
            .map(|e| e.blocks.len())
            .sum()
    }

    /// Looks up the longest run of published full blocks matching the
    /// front of `tokens`, limited to `max_tokens` positions (the caller
    /// passes the sharable region — full blocks of the densely prefilled
    /// prompt). Returns `None` on a cold miss. Hits refresh the LRU stamp
    /// of every entry in the run.
    ///
    /// `model` is the caller's identity key for the weights the blocks
    /// were computed with (pointer identity is sound when every submitted
    /// model outlives the index's owner, which the scheduler's lifetime
    /// parameter guarantees).
    pub fn lookup(
        &mut self,
        model: usize,
        tokens: &[u32],
        block_tokens: usize,
        max_tokens: usize,
    ) -> Option<PrefixHit> {
        assert!(block_tokens > 0, "block_tokens must be positive");
        self.clock += 1;
        let stamp = self.clock;
        let mut parent = 0u64;
        let mut runs = 0usize;
        let mut layer_blocks: Vec<Vec<SharedKvBlock>> = Vec::new();
        loop {
            let start = runs * block_tokens;
            let end = start + block_tokens;
            if end > max_tokens || end > tokens.len() {
                break;
            }
            let key = PrefixKey {
                model,
                parent,
                tokens: tokens[start..end].into(),
            };
            let Some(entry) = self.entries.get_mut(&key) else {
                break;
            };
            entry.stamp = stamp;
            parent = entry.id;
            if layer_blocks.is_empty() {
                layer_blocks = vec![Vec::new(); entry.blocks.len()];
            }
            for (layer, block) in entry.blocks.iter().enumerate() {
                layer_blocks[layer].push(block.clone());
            }
            runs += 1;
        }
        if runs == 0 {
            return None;
        }
        Some(PrefixHit {
            tokens: runs * block_tokens,
            layer_blocks,
        })
    }

    /// Publishes the full blocks covering `tokens` (whose length must be a
    /// multiple of `block_tokens`): `per_layer[layer][i]` is that layer's
    /// `i`-th block. Boundaries already present are refreshed, not
    /// replaced — the first publisher wins, so concurrent prefills of the
    /// same prompt converge on one physical copy for all future requests.
    /// Returns the number of block handles newly retained.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is not block-aligned or `per_layer` rows do not
    /// all hold one block per boundary.
    pub fn publish(
        &mut self,
        model: usize,
        tokens: &[u32],
        block_tokens: usize,
        per_layer: &[Vec<SharedKvBlock>],
    ) -> usize {
        assert!(block_tokens > 0, "block_tokens must be positive");
        assert!(
            tokens.len().is_multiple_of(block_tokens),
            "published run must end on a block boundary"
        );
        let runs = tokens.len() / block_tokens;
        assert!(!per_layer.is_empty(), "at least one layer required");
        for layer in per_layer {
            assert_eq!(layer.len(), runs, "one block per boundary per layer");
        }
        self.clock += 1;
        let stamp = self.clock;
        let mut inserted = 0usize;
        let mut parent = 0u64;
        for i in 0..runs {
            let key = PrefixKey {
                model,
                parent,
                tokens: tokens[i * block_tokens..(i + 1) * block_tokens].into(),
            };
            match self.entries.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut occupied) => {
                    let entry = occupied.get_mut();
                    entry.stamp = stamp;
                    parent = entry.id;
                }
                std::collections::hash_map::Entry::Vacant(vacant) => {
                    let blocks: Vec<SharedKvBlock> =
                        per_layer.iter().map(|layer| layer[i].clone()).collect();
                    inserted += blocks.len();
                    self.next_id += 1;
                    let id = self.next_id;
                    vacant.insert(PrefixEntry { id, blocks, stamp });
                    parent = id;
                }
            }
        }
        inserted
    }

    /// Evicts least-recently-used **unreferenced** entries until at most
    /// `cap` unreferenced blocks remain (entries still attached to live
    /// sessions are pinned). Returns the number of block handles dropped;
    /// their storage returns to the pool's free list immediately.
    ///
    /// An evicted boundary makes any deeper boundaries of the same run
    /// unreachable; untouched, their stamps age and they are evicted on
    /// later passes. (Entry counts are small — bounded by the cap — so
    /// the linear scans here are noise next to a single prefill.)
    pub fn evict_unreferenced_to(&mut self, cap: usize) -> usize {
        let mut evicted = 0usize;
        while self.unreferenced_blocks() > cap {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.is_unreferenced())
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            let entry = self.entries.remove(&key).expect("victim probed above");
            evicted += entry.blocks.len();
        }
        evicted
    }

    /// Drops every entry, returning how many block handles were released.
    pub fn clear(&mut self) -> usize {
        let released = self.retained_blocks();
        self.entries.clear();
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_tensor::Prng;

    #[test]
    fn blocks_grow_lazily_and_return_on_clear() {
        let pool = KvBlockPool::new(4);
        let mut cache = PagedKvCache::new(&pool);
        assert_eq!(pool.blocks_in_use(), 0);
        for t in 0..9 {
            cache.push(&[t as f32; 2], &[t as f32 + 0.5; 2]);
        }
        // 9 tokens at 4 per block = 3 blocks, allocated only as needed.
        assert_eq!(cache.blocks_held(), 3);
        assert_eq!(pool.blocks_in_use(), 3);
        assert_eq!(cache.len(), 9);
        assert_eq!(cache.key(5), &[5.0; 2]);
        assert_eq!(cache.value(8), &[8.5; 2]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(pool.blocks_in_use(), 0);
        assert_eq!(pool.blocks_free(), 3);
        assert_eq!(pool.blocks_created(), 3);
    }

    #[test]
    fn released_blocks_are_recycled_not_recreated() {
        let pool = KvBlockPool::new(2);
        for _ in 0..5 {
            let mut cache = PagedKvCache::new(&pool);
            for t in 0..6 {
                cache.push(&[t as f32], &[t as f32]);
            }
        } // drop returns blocks each round
        assert_eq!(pool.blocks_created(), 3, "peak usage, not cumulative");
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn reads_match_a_contiguous_reference_across_block_boundaries() {
        let pool = KvBlockPool::new(3);
        let mut cache = PagedKvCache::new(&pool);
        let mut keys = Vec::new();
        let mut values = Vec::new();
        for t in 0..11 {
            let k: Vec<f32> = (0..4).map(|i| (t * 4 + i) as f32).collect();
            let v: Vec<f32> = (0..4).map(|i| -((t * 4 + i) as f32)).collect();
            cache.push(&k, &v);
            keys.push(k);
            values.push(v);
        }
        for t in 0..11 {
            assert_eq!(cache.key(t), &keys[t][..], "key {t}");
            assert_eq!(cache.value(t), &values[t][..], "value {t}");
        }
    }

    #[test]
    fn memory_accounting_tracks_blocks() {
        let pool = KvBlockPool::new(4);
        let mut cache = PagedKvCache::new(&pool);
        assert_eq!(pool.memory_bytes(), 0);
        for t in 0..5 {
            cache.push(&[t as f32; 8], &[t as f32; 8]);
        }
        // 2 blocks × 2 (k+v) × 4 tokens × 8 floats × 4 bytes.
        assert_eq!(pool.memory_bytes(), 2 * 2 * 4 * 8 * 4);
        assert_eq!(pool.in_use_bytes(), pool.memory_bytes());
        cache.clear();
        assert_eq!(pool.in_use_bytes(), 0);
        assert_eq!(
            pool.memory_bytes(),
            2 * 2 * 4 * 8 * 4,
            "free blocks stay resident"
        );
    }

    #[test]
    #[should_panic(expected = "KV block budget exhausted")]
    fn budget_exhaustion_panics_with_direction() {
        let pool = KvBlockPool::with_budget(2, 1);
        let mut cache = PagedKvCache::new(&pool);
        for t in 0..3 {
            cache.push(&[t as f32], &[t as f32]);
        }
    }

    #[test]
    fn available_blocks_tracks_budget() {
        let pool = KvBlockPool::with_budget(2, 4);
        assert_eq!(pool.available_blocks(), 4);
        let mut cache = PagedKvCache::new(&pool);
        for t in 0..4 {
            cache.push(&[t as f32], &[t as f32]);
        }
        assert_eq!(pool.available_blocks(), 2);
        drop(cache);
        assert_eq!(pool.available_blocks(), 4, "released blocks free budget");
    }

    #[test]
    fn clone_is_copy_on_write_sharing_blocks_until_a_push() {
        let pool = KvBlockPool::new(2);
        let mut cache = PagedKvCache::new(&pool);
        for t in 0..3 {
            cache.push(&[t as f32; 2], &[t as f32; 2]);
        }
        // 2 blocks live (1 full, 1 half-full partial tail).
        assert_eq!(pool.blocks_in_use(), 2);
        let copy = cache.clone();
        assert_eq!(
            pool.blocks_in_use(),
            2,
            "a COW clone aliases blocks, it does not copy them"
        );
        assert_eq!(copy.len(), 3);
        assert_eq!(copy.key(2), &[2.0; 2]);
        // Writing through the original forks the shared partial tail…
        cache.push(&[9.0; 2], &[9.0; 2]);
        assert_eq!(pool.blocks_in_use(), 3, "first write forks one block");
        // …and the clone still reads the pre-fork contents.
        assert_eq!(copy.len(), 3);
        assert_eq!(copy.key(2), &[2.0; 2]);
        assert_eq!(cache.key(3), &[9.0; 2]);
    }

    #[test]
    fn cow_fork_never_mutates_the_shared_copy() {
        let pool = KvBlockPool::new(4);
        let mut base = PagedKvCache::new(&pool);
        for t in 0..6 {
            base.push(&[t as f32; 2], &[-(t as f32); 2]);
        }
        let mut fork = base.clone();
        // Both sides write their own continuations past the shared state.
        fork.push(&[100.0; 2], &[100.0; 2]);
        base.push(&[200.0; 2], &[200.0; 2]);
        // The shared positions are intact and divergent positions private.
        for t in 0..6 {
            assert_eq!(base.key(t), &[t as f32; 2], "shared key {t}");
            assert_eq!(fork.key(t), &[t as f32; 2], "shared key {t} via fork");
        }
        assert_eq!(fork.key(6), &[100.0; 2]);
        assert_eq!(base.key(6), &[200.0; 2]);
        // Full block 0 stayed physically shared; only the tail forked.
        assert!(Arc::ptr_eq(
            &base.block_refs()[0].inner,
            &fork.block_refs()[0].inner
        ));
        assert!(!Arc::ptr_eq(
            &base.block_refs()[1].inner,
            &fork.block_refs()[1].inner
        ));
    }

    #[test]
    fn shared_blocks_free_only_when_the_last_referrer_drops() {
        let pool = KvBlockPool::new(4);
        let mut base = PagedKvCache::new(&pool);
        for t in 0..8 {
            base.push(&[t as f32], &[t as f32]);
        }
        let prefix: Vec<SharedKvBlock> = base.block_refs()[..2].to_vec();
        assert!(prefix.iter().all(|b| b.tokens() == 4), "both blocks full");

        // Five caches attach the same two full blocks, then drop in a
        // seeded random order; the blocks must stay resident until the
        // very last referrer (base included) is gone.
        let mut attached: Vec<PagedKvCache> = (0..5)
            .map(|_| PagedKvCache::with_prefix(&pool, prefix.clone()))
            .collect();
        drop(prefix);
        assert_eq!(pool.blocks_in_use(), 2, "attaching allocates nothing");
        for cache in &attached {
            assert_eq!(cache.len(), 8);
            assert_eq!(cache.key(5), &[5.0]);
        }
        let mut rng = Prng::seed(0xC0FFEE);
        while !attached.is_empty() {
            let i = rng.below(attached.len());
            attached.swap_remove(i);
            assert_eq!(
                pool.blocks_in_use(),
                2,
                "blocks pinned while any referrer lives"
            );
        }
        drop(base);
        assert_eq!(pool.blocks_in_use(), 0, "last drop frees the blocks");
        assert_eq!(pool.in_use_bytes(), 0);
        assert_eq!(pool.blocks_free(), pool.blocks_created());
    }

    #[test]
    fn with_prefix_extends_into_private_blocks() {
        let pool = KvBlockPool::new(2);
        let mut base = PagedKvCache::new(&pool);
        for t in 0..4 {
            base.push(&[t as f32; 3], &[t as f32; 3]);
        }
        let mut attached = PagedKvCache::with_prefix(&pool, base.block_refs().to_vec());
        assert_eq!(attached.len(), 4);
        attached.push(&[7.0; 3], &[7.0; 3]);
        assert_eq!(attached.len(), 5);
        assert_eq!(attached.key(4), &[7.0; 3]);
        // The push allocated a fresh private block past the prefix.
        assert_eq!(pool.blocks_in_use(), 3);
        assert_eq!(base.len(), 4, "publisher untouched by the continuation");
    }

    #[test]
    #[should_panic(expected = "only full blocks are sharable")]
    fn with_prefix_rejects_partial_blocks() {
        let pool = KvBlockPool::new(4);
        let mut base = PagedKvCache::new(&pool);
        for t in 0..6 {
            base.push(&[t as f32], &[t as f32]);
        }
        // Block 1 holds only 2 of 4 positions.
        let _ = PagedKvCache::with_prefix(&pool, base.block_refs().to_vec());
    }

    #[test]
    #[should_panic(expected = "different pool")]
    fn with_prefix_rejects_foreign_blocks() {
        let pool_a = KvBlockPool::new(2);
        let pool_b = KvBlockPool::new(2);
        let mut base = PagedKvCache::new(&pool_a);
        base.push(&[1.0], &[1.0]);
        base.push(&[2.0], &[2.0]);
        let _ = PagedKvCache::with_prefix(&pool_b, base.block_refs().to_vec());
    }

    #[test]
    fn pool_is_shared_across_clones() {
        let pool = KvBlockPool::new(2);
        let handle = pool.clone();
        let mut cache = PagedKvCache::new(&handle);
        cache.push(&[1.0], &[2.0]);
        assert_eq!(pool.blocks_in_use(), 1);
    }

    #[test]
    #[should_panic(expected = "one pool serves one model")]
    fn mixed_dimensions_on_one_pool_panic() {
        let pool = KvBlockPool::new(2);
        let mut a = PagedKvCache::new(&pool);
        a.push(&[1.0, 2.0], &[3.0, 4.0]);
        let mut b = PagedKvCache::new(&pool);
        b.push(&[1.0], &[2.0]);
    }

    /// Builds a base cache of `tokens` positions over `pool` with a
    /// recognizable fill.
    fn filled_cache(pool: &KvBlockPool, tokens: usize) -> PagedKvCache {
        let mut cache = PagedKvCache::new(pool);
        for t in 0..tokens {
            cache.push(&[t as f32; 2], &[-(t as f32); 2]);
        }
        cache
    }

    #[test]
    fn prefix_index_publishes_and_attaches_runs() {
        let pool = KvBlockPool::new(4);
        let mut index = PrefixIndex::new();
        let model = 0xA11CE;
        let tokens: Vec<u32> = (1..=8).collect();
        // Two layers, two full blocks each.
        let layers: Vec<PagedKvCache> = (0..2).map(|_| filled_cache(&pool, 8)).collect();
        let per_layer: Vec<Vec<SharedKvBlock>> =
            layers.iter().map(|c| c.block_refs().to_vec()).collect();
        let retained = index.publish(model, &tokens, 4, &per_layer);
        assert_eq!(retained, 4, "2 boundaries × 2 layers newly retained");
        assert_eq!(index.entries(), 2);
        assert_eq!(index.retained_blocks(), 4);

        // A prompt sharing both blocks hits both; one sharing only the
        // first block hits one; a cold prompt misses.
        let hit = index
            .lookup(model, &[1, 2, 3, 4, 5, 6, 7, 8, 9], 4, 8)
            .unwrap();
        assert_eq!(hit.tokens, 8);
        assert_eq!(hit.layer_blocks.len(), 2);
        assert_eq!(hit.total_blocks(), 4);
        let partial = index
            .lookup(model, &[1, 2, 3, 4, 9, 9, 9, 9], 4, 8)
            .unwrap();
        assert_eq!(partial.tokens, 4);
        assert!(index.lookup(model, &[9, 2, 3, 4], 4, 4).is_none());
        assert!(
            index.lookup(model + 1, &tokens, 4, 8).is_none(),
            "another model's prompts never match"
        );
        assert!(
            index.lookup(model, &tokens, 4, 3).is_none(),
            "a sub-block sharable region cannot hit"
        );

        // Re-publication of an existing run retains nothing new.
        assert_eq!(index.publish(model, &tokens, 4, &per_layer), 0);
    }

    #[test]
    fn prefix_index_evicts_lru_unreferenced_entries_only() {
        let pool = KvBlockPool::new(2);
        let mut index = PrefixIndex::new();
        let layer = filled_cache(&pool, 6); // 3 full blocks
        index.publish(7, &[1, 2, 3, 4, 5, 6], 2, &[layer.block_refs().to_vec()]);
        assert_eq!(index.retained_blocks(), 3);
        assert_eq!(
            index.unreferenced_blocks(),
            0,
            "publisher still references every block"
        );
        assert_eq!(
            index.evict_unreferenced_to(0),
            0,
            "pinned entries never evict"
        );

        drop(layer);
        assert_eq!(index.unreferenced_blocks(), 3);
        assert_eq!(pool.blocks_in_use(), 3, "index retention keeps blocks live");
        // Touch the deepest boundary so the shallow ones are LRU.
        let _ = index.lookup(7, &[1, 2, 3, 4, 5, 6], 2, 6);
        let evicted = index.evict_unreferenced_to(1);
        assert_eq!(evicted, 2);
        assert_eq!(index.retained_blocks(), 1);
        assert_eq!(pool.blocks_in_use(), 1, "evicted storage returned");
        assert_eq!(index.clear(), 1);
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn truncate_on_a_block_boundary_releases_whole_blocks() {
        let pool = KvBlockPool::new(4);
        let mut cache = filled_cache(&pool, 11); // 3 blocks: 4 + 4 + 3
        assert_eq!(pool.blocks_in_use(), 3);
        cache.truncate(8);
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.blocks_held(), 2);
        assert_eq!(pool.blocks_in_use(), 2, "dropped block returned");
        assert_eq!(pool.blocks_free(), 1);
        for t in 0..8 {
            assert_eq!(cache.key(t), &[t as f32; 2], "kept key {t}");
            assert_eq!(cache.value(t), &[-(t as f32); 2], "kept value {t}");
        }
        // Appending after the rollback recycles the freed storage.
        cache.push(&[50.0; 2], &[50.0; 2]);
        assert_eq!(cache.len(), 9);
        assert_eq!(cache.key(8), &[50.0; 2]);
        assert_eq!(pool.blocks_created(), 3, "no new blocks created");
    }

    #[test]
    fn truncate_mid_block_cuts_the_private_tail_in_place() {
        let pool = KvBlockPool::new(4);
        let mut cache = filled_cache(&pool, 10); // 3 blocks, tail holds 2
        cache.truncate(6);
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.blocks_held(), 2);
        assert_eq!(pool.blocks_in_use(), 2);
        assert_eq!(
            pool.blocks_created(),
            3,
            "a private mid-block cut must not allocate"
        );
        for t in 0..6 {
            assert_eq!(cache.key(t), &[t as f32; 2], "kept key {t}");
        }
        // The cut tail refills from the truncation point.
        cache.push(&[60.0; 2], &[60.0; 2]);
        cache.push(&[61.0; 2], &[61.0; 2]);
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.key(6), &[60.0; 2]);
        assert_eq!(cache.key(7), &[61.0; 2]);
        assert_eq!(cache.blocks_held(), 2, "refill reuses the cut block");
    }

    #[test]
    fn truncate_to_zero_drains_every_block_to_the_pool() {
        let pool = KvBlockPool::new(4);
        let mut cache = filled_cache(&pool, 9);
        assert_eq!(pool.blocks_in_use(), 3);
        cache.truncate(0);
        assert!(cache.is_empty());
        assert_eq!(cache.blocks_held(), 0);
        assert_eq!(pool.blocks_in_use(), 0, "all storage back on the free list");
        assert_eq!(pool.blocks_free(), pool.blocks_created());
    }

    #[test]
    fn truncate_past_len_is_a_no_op() {
        let pool = KvBlockPool::new(4);
        let mut cache = filled_cache(&pool, 5);
        cache.truncate(5);
        cache.truncate(100);
        assert_eq!(cache.len(), 5);
        assert_eq!(pool.blocks_in_use(), 2);
        assert_eq!(cache.key(4), &[4.0; 2]);
    }

    #[test]
    fn truncating_a_cow_fork_never_touches_the_shared_blocks() {
        let pool = KvBlockPool::new(4);
        let base = filled_cache(&pool, 10); // blocks: 4 + 4 + 2 (partial tail)
        let mut fork = base.clone();
        assert_eq!(pool.blocks_in_use(), 3, "a clone aliases, it does not copy");
        assert_eq!(base.block_refs()[2].ref_count(), 2);

        // Cutting mid-way through the *shared* tail forks a private copy:
        // the shared block keeps all 10 positions for the base.
        fork.truncate(9);
        assert_eq!(fork.len(), 9);
        assert_eq!(pool.blocks_in_use(), 4, "the cut tail forked privately");
        assert_eq!(
            base.block_refs()[2].ref_count(),
            1,
            "fork released its handle on the shared tail"
        );
        assert_eq!(base.block_refs()[2].tokens(), 2, "shared tail intact");
        assert_eq!(base.len(), 10);
        assert_eq!(base.key(9), &[9.0; 2], "base reads its full context");
        assert_eq!(fork.key(8), &[8.0; 2], "fork reads the kept prefix");
        // Full shared blocks stay physically shared after the truncation.
        for i in 0..2 {
            assert!(
                Arc::ptr_eq(&base.block_refs()[i].inner, &fork.block_refs()[i].inner),
                "full block {i} must stay shared"
            );
            assert_eq!(base.block_refs()[i].ref_count(), 2, "refcount block {i}");
        }

        // Cutting *to a shared boundary* only drops handles — no fork, no
        // mutation, and the shared blocks' refcounts drop by exactly one.
        let mut fork2 = base.clone();
        fork2.truncate(4);
        assert_eq!(fork2.len(), 4);
        assert_eq!(fork2.blocks_held(), 1);
        assert_eq!(
            base.block_refs()[0].ref_count(),
            3,
            "block 0: base+fork+fork2"
        );
        assert_eq!(base.block_refs()[1].ref_count(), 2, "block 1: base+fork");
        assert_eq!(base.block_refs()[2].ref_count(), 1, "tail: base only");
        drop(fork);
        drop(fork2);
        drop(base);
        assert_eq!(pool.blocks_in_use(), 0, "pool drains after all forks drop");
    }

    #[test]
    fn truncate_interacts_safely_with_a_prefix_attachment() {
        let pool = KvBlockPool::new(4);
        let mut index = PrefixIndex::new();
        let base = filled_cache(&pool, 8); // 2 full blocks
        index.publish(
            5,
            &[1, 2, 3, 4, 5, 6, 7, 8],
            4,
            &[base.block_refs().to_vec()],
        );
        drop(base);

        let hit = index.lookup(5, &[1, 2, 3, 4, 5, 6, 7, 8], 4, 8).unwrap();
        let mut attached = PagedKvCache::with_prefix(&pool, hit.layer_blocks[0].clone());
        drop(hit);
        for t in 8..11 {
            attached.push(&[t as f32; 2], &[t as f32; 2]);
        }
        assert_eq!(pool.blocks_in_use(), 3);

        // Rolling back within the private continuation leaves the published
        // prefix blocks untouched (still retained, still shared).
        attached.truncate(9);
        assert_eq!(attached.len(), 9);
        assert_eq!(pool.blocks_in_use(), 3, "private tail cut in place");
        assert_eq!(index.retained_blocks(), 2);
        assert_eq!(attached.key(8), &[8.0; 2]);

        // Rolling back *into* the shared region forks the boundary block —
        // the index's copy must stay bit-identical for future hits.
        attached.truncate(6);
        assert_eq!(attached.len(), 6);
        assert_eq!(attached.blocks_held(), 2);
        let refetch = index.lookup(5, &[1, 2, 3, 4, 5, 6, 7, 8], 4, 8).unwrap();
        assert_eq!(refetch.tokens, 8, "published prefix still fully intact");
        assert_eq!(refetch.layer_blocks[0][1].tokens(), 4);
        drop(refetch);
        drop(attached);
        assert_eq!(index.clear(), 2);
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn swap_out_frees_blocks_and_restore_is_bit_identical() {
        let pool = KvBlockPool::new(4);
        let mut cache = PagedKvCache::new(&pool);
        for t in 0..11 {
            cache.push(&[t as f32; 3], &[-(t as f32); 3]);
        }
        assert_eq!(pool.blocks_in_use(), 3);
        let expected_bytes = cache.content_bytes();
        assert_eq!(expected_bytes, 2 * 11 * 3 * 4);

        let cold = cache.swap_out();
        assert_eq!(cold.tokens(), 11);
        assert_eq!(cold.bytes(), expected_bytes);
        assert!(cache.is_empty());
        assert_eq!(pool.blocks_in_use(), 0, "swap releases every block");
        assert_eq!(cache.content_bytes(), 0);

        cache.restore(&cold);
        assert_eq!(cache.len(), 11);
        assert_eq!(pool.blocks_in_use(), 3, "restored into fresh blocks");
        for t in 0..11 {
            assert_eq!(cache.key(t), &[t as f32; 3], "restored key {t}");
            assert_eq!(cache.value(t), &[-(t as f32); 3], "restored value {t}");
        }
        // The restored cache keeps appending normally.
        cache.push(&[99.0; 3], &[99.0; 3]);
        assert_eq!(cache.key(11), &[99.0; 3]);
    }

    #[test]
    fn swap_out_of_a_prefix_attached_cache_is_self_contained() {
        let pool = KvBlockPool::new(4);
        let mut index = PrefixIndex::new();
        let base = filled_cache(&pool, 8); // 2 full blocks
        index.publish(
            3,
            &[1, 2, 3, 4, 5, 6, 7, 8],
            4,
            &[base.block_refs().to_vec()],
        );
        drop(base);

        let hit = index.lookup(3, &[1, 2, 3, 4, 5, 6, 7, 8], 4, 8).unwrap();
        let mut attached = PagedKvCache::with_prefix(&pool, hit.layer_blocks[0].clone());
        drop(hit);
        attached.push(&[50.0; 2], &[50.0; 2]);
        assert_eq!(pool.blocks_in_use(), 3, "2 shared + 1 private tail");

        let cold = attached.swap_out();
        assert_eq!(
            pool.blocks_in_use(),
            2,
            "private tail freed; index retention keeps the shared prefix"
        );
        assert_eq!(cold.tokens(), 9, "shared positions are copied too");

        attached.restore(&cold);
        assert_eq!(pool.blocks_in_use(), 5, "restored blocks are all private");
        for t in 0..8 {
            assert_eq!(attached.key(t), &[t as f32; 2], "prefix position {t}");
        }
        assert_eq!(attached.key(8), &[50.0; 2]);
        drop(attached);
        assert_eq!(index.clear(), 2);
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn empty_swap_restore_round_trip_is_a_no_op() {
        let pool = KvBlockPool::new(4);
        let mut cache = PagedKvCache::new(&pool);
        let cold = cache.swap_out();
        assert_eq!(cold.tokens(), 0);
        assert_eq!(cold.bytes(), 0);
        cache.restore(&cold);
        assert!(cache.is_empty());
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "restore requires an empty cache")]
    fn restore_into_a_non_empty_cache_panics() {
        let pool = KvBlockPool::new(4);
        let mut cache = PagedKvCache::new(&pool);
        cache.push(&[1.0], &[1.0]);
        let cold = cache.swap_out();
        cache.push(&[2.0], &[2.0]);
        cache.restore(&cold);
    }

    #[test]
    fn f16_pool_halves_every_byte_figure() {
        // Mirror of `memory_accounting_tracks_blocks` at KvDtype::F16: the
        // same workload costs exactly half the bytes, block for block.
        let pool = KvBlockPool::with_budget_dtype(4, usize::MAX, KvDtype::F16);
        assert_eq!(pool.dtype(), KvDtype::F16);
        let mut cache = PagedKvCache::new(&pool);
        assert_eq!(pool.memory_bytes(), 0);
        for t in 0..5 {
            cache.push(&[t as f32; 8], &[t as f32; 8]);
        }
        // 2 blocks × 2 (k+v) × 4 tokens × 8 elements × 2 bytes.
        assert_eq!(pool.memory_bytes(), 2 * 2 * 4 * 8 * 2);
        assert_eq!(pool.in_use_bytes(), pool.memory_bytes());
        assert_eq!(cache.content_bytes(), 2 * 5 * 8 * 2);
        cache.clear();
        assert_eq!(pool.in_use_bytes(), 0);
    }

    #[test]
    fn f16_pushes_round_to_nearest_even_and_reads_back_the_stored_words() {
        let pool = KvBlockPool::with_budget_dtype(3, usize::MAX, KvDtype::F16);
        let mut cache = PagedKvCache::new(&pool);
        // Values chosen to exercise exact and rounded cases across an
        // unaligned block boundary (block_tokens = 3).
        let raw: Vec<f32> = (0..7).map(|t| 2048.0 + t as f32).collect();
        for &v in &raw {
            cache.push(&[v, -v], &[v * 0.5, 1.0 + v * 1e-4]);
        }
        for (t, &v) in raw.iter().enumerate() {
            let expect_k = [F16::from_f32(v), F16::from_f32(-v)];
            let expect_v = [F16::from_f32(v * 0.5), F16::from_f32(1.0 + v * 1e-4)];
            assert_eq!(cache.key_h(t), &expect_k, "key {t}");
            assert_eq!(cache.value_h(t), &expect_v, "value {t}");
        }
        // 2049.0 is not representable in f16 (rounds to 2048): the cache
        // must return the *stored* word, not pretend to be lossless.
        assert_eq!(cache.key_h(1)[0].to_f32(), 2048.0);
    }

    #[test]
    #[should_panic(expected = "read keys via key_h")]
    fn f32_readers_of_an_f16_pool_panic_with_direction() {
        let pool = KvBlockPool::with_budget_dtype(2, usize::MAX, KvDtype::F16);
        let mut cache = PagedKvCache::new(&pool);
        cache.push(&[1.0], &[2.0]);
        let _ = cache.key(0);
    }

    #[test]
    fn f16_cow_truncate_and_prefix_semantics_are_dtype_independent() {
        let pool = KvBlockPool::with_budget_dtype(4, usize::MAX, KvDtype::F16);
        let mut base = PagedKvCache::new(&pool);
        for t in 0..10 {
            base.push(&[t as f32; 2], &[-(t as f32); 2]);
        }
        let mut fork = base.clone();
        assert_eq!(pool.blocks_in_use(), 3, "clone aliases, does not copy");
        // Mid-shared-tail truncate forks privately; base reads intact.
        fork.truncate(9);
        assert_eq!(pool.blocks_in_use(), 4);
        assert_eq!(base.key_h(9), &[F16::from_f32(9.0); 2]);
        assert_eq!(fork.key_h(8), &[F16::from_f32(8.0); 2]);
        // Prefix attach over full blocks works unchanged.
        let prefix: Vec<SharedKvBlock> = base.block_refs()[..2].to_vec();
        let attached = PagedKvCache::with_prefix(&pool, prefix);
        assert_eq!(attached.len(), 8);
        assert_eq!(attached.value_h(3), &[F16::from_f32(-3.0); 2]);
        drop((base, fork, attached));
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn f16_swap_restore_is_bit_identical_and_half_the_cold_bytes() {
        let pool = KvBlockPool::with_budget_dtype(4, usize::MAX, KvDtype::F16);
        let mut cache = PagedKvCache::new(&pool);
        let mut rng = Prng::seed(99);
        let pushed: Vec<(Vec<f32>, Vec<f32>)> = (0..11)
            .map(|_| {
                let k: Vec<f32> = (0..3).map(|_| rng.normal(0.0, 2.0) as f32).collect();
                let v: Vec<f32> = (0..3).map(|_| rng.normal(0.0, 2.0) as f32).collect();
                (k, v)
            })
            .collect();
        for (k, v) in &pushed {
            cache.push(k, v);
        }
        let before: Vec<Vec<F16>> = (0..11).map(|t| cache.key_h(t).to_vec()).collect();

        let cold = cache.swap_out();
        assert_eq!(cold.dtype(), KvDtype::F16);
        assert_eq!(cold.bytes(), 2 * 11 * 3 * 2, "half the f32 cold bytes");
        assert_eq!(pool.blocks_in_use(), 0);

        cache.restore(&cold);
        assert_eq!(cache.len(), 11);
        for (t, expect) in before.iter().enumerate() {
            assert_eq!(cache.key_h(t), &expect[..], "restored key {t}");
        }
    }

    #[test]
    fn push_from_transfers_stored_words_without_a_round_trip() {
        let pool = KvBlockPool::with_budget_dtype(3, usize::MAX, KvDtype::F16);
        let mut src = PagedKvCache::new(&pool);
        for t in 0..7 {
            src.push(&[t as f32 + 0.1; 2], &[t as f32 - 0.1; 2]);
        }
        let mut dst = PagedKvCache::new(&pool);
        for t in 0..7 {
            dst.push_from(&src, t);
        }
        for t in 0..7 {
            assert_eq!(dst.key_h(t), src.key_h(t), "key {t}");
            assert_eq!(dst.value_h(t), src.value_h(t), "value {t}");
        }
        // Same primitive on an f32 pool.
        let pool32 = KvBlockPool::new(3);
        let mut a = PagedKvCache::new(&pool32);
        a.push(&[1.5, 2.5], &[3.5, 4.5]);
        let mut b = PagedKvCache::new(&pool32);
        b.push_from(&a, 0);
        assert_eq!(b.key(0), a.key(0));
    }

    #[test]
    #[should_panic(expected = "matching KV dtypes")]
    fn push_from_rejects_mixed_dtypes() {
        let f32_pool = KvBlockPool::new(2);
        let f16_pool = KvBlockPool::with_budget_dtype(2, usize::MAX, KvDtype::F16);
        let mut src = PagedKvCache::new(&f32_pool);
        src.push(&[1.0], &[1.0]);
        let mut dst = PagedKvCache::new(&f16_pool);
        dst.push_from(&src, 0);
    }

    #[test]
    fn refcount_torture_random_drop_order_drains_to_zero_bytes() {
        let pool = KvBlockPool::new(4);
        let mut index = PrefixIndex::new();
        let model = 42;
        let tokens: Vec<u32> = (10..22).collect(); // 12 tokens = 3 full blocks
        let base = filled_cache(&pool, 12);
        index.publish(model, &tokens, 4, &[base.block_refs().to_vec()]);
        drop(base);

        // N sessions attach the same prefix and then finish (drop) in a
        // seeded random order interleaved with new attachments.
        let mut rng = Prng::seed(20260727);
        let mut live: Vec<PagedKvCache> = Vec::new();
        let mut peak = 0usize;
        for round in 0..64 {
            if round % 3 != 2 || live.is_empty() {
                let hit = index.lookup(model, &tokens, 4, 12).expect("warm index");
                let mut cache = PagedKvCache::with_prefix(&pool, hit.layer_blocks[0].clone());
                // Each session writes a private continuation.
                cache.push(&[round as f32; 2], &[round as f32; 2]);
                live.push(cache);
            } else {
                let i = rng.below(live.len());
                live.swap_remove(i);
            }
            peak = peak.max(pool.blocks_in_use());
            // Shared prefix is 3 physical blocks however many sessions
            // reference it; only tails multiply.
            assert_eq!(pool.blocks_in_use(), 3 + live.len());
        }
        assert!(peak > 3, "the torture must actually share under load");
        live.clear();
        assert_eq!(pool.blocks_in_use(), 3, "index retention only");
        assert_eq!(index.clear(), 3);
        assert_eq!(pool.blocks_in_use(), 0, "pool drains to zero blocks");
        assert_eq!(pool.in_use_bytes(), 0, "pool drains to zero bytes");
        assert_eq!(pool.blocks_free(), pool.blocks_created());
    }
}
