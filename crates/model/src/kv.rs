//! Paged KV-cache storage: fixed-size token blocks from a shared pool.
//!
//! The serving-scale problem with a contiguous
//! [`KvCache`](crate::attention::KvCache): a request that *might* generate
//! `max_new` tokens reserves `prompt + max_new` positions of cache up
//! front, per layer — memory proportional to the *worst case*, even when
//! generation stops after three tokens. Under churning traffic that
//! over-reservation, multiplied by concurrent requests, is the capacity
//! wall (the same one vLLM's PagedAttention removes for GPU serving).
//!
//! This module splits KV storage into:
//!
//! * [`KvBlockPool`] — a shared, thread-safe allocator of **fixed-size
//!   token blocks** (`block_tokens` positions each). Released blocks go on
//!   a free list and are recycled, so pool capacity tracks *peak live*
//!   usage, never cumulative traffic. An optional block budget
//!   ([`KvBlockPool::with_budget`]) turns the pool into the admission
//!   throttle the scheduler's capacity control is built on.
//! * [`PagedKvCache`] — one sequence's view: a block table that grows **one
//!   block at a time, lazily, as tokens are actually produced**, and
//!   returns every block to the pool on drop (or
//!   [`clear`](PagedKvCache::clear)). A request that stops early only ever
//!   allocated blocks for the tokens it really produced.
//!
//! Reads go through the block table (`t → block[t / block_tokens]`), but
//! deliver exactly the same `&[f32]` slices in exactly the same order as
//! the contiguous layout, so every attention kernel is bit-identical over
//! either storage — the compatibility wrapper in
//! [`attention`](crate::attention) dispatches between them.

use std::sync::{Arc, Mutex};

/// Default tokens per KV block: small enough that a short answer wastes at
/// most a fraction of a block per layer, large enough that the block table
/// stays tiny for long contexts.
pub const DEFAULT_BLOCK_TOKENS: usize = 16;

/// One fixed-size block of KV storage: up to `block_tokens` positions of
/// keys and values, filled front to back.
#[derive(Debug)]
struct KvBlock {
    keys: Vec<f32>,
    values: Vec<f32>,
}

impl KvBlock {
    fn new(block_tokens: usize, dim: usize) -> Self {
        Self {
            keys: Vec::with_capacity(block_tokens * dim),
            values: Vec::with_capacity(block_tokens * dim),
        }
    }

    /// Empties the block for reuse, retaining its allocation.
    fn reset(&mut self) {
        self.keys.clear();
        self.values.clear();
    }
}

#[derive(Debug, Default)]
struct PoolState {
    free: Vec<KvBlock>,
    /// Blocks created and not yet dropped (free + in use).
    created: usize,
    /// Blocks currently held by caches.
    in_use: usize,
    /// KV dimension, established by the first allocation (0 = none yet).
    dim: usize,
}

#[derive(Debug)]
struct PoolShared {
    block_tokens: usize,
    max_blocks: usize,
    state: Mutex<PoolState>,
}

/// A shared, thread-safe pool of fixed-size KV blocks.
///
/// Cloning the pool clones a handle (`Arc`): every [`PagedKvCache`] built
/// from any clone allocates from, and releases to, the same free list.
/// Allocation takes a mutex, but only once per `block_tokens` produced
/// tokens per layer — never per token read (caches own their blocks
/// outright, so attention reads are lock-free).
///
/// # Example
///
/// ```
/// use sparseinfer_model::kv::{KvBlockPool, PagedKvCache};
///
/// let pool = KvBlockPool::new(4);
/// let mut cache = PagedKvCache::new(&pool);
/// cache.push(&[1.0, 2.0], &[3.0, 4.0]);
/// assert_eq!(cache.key(0), &[1.0, 2.0]);
/// assert_eq!(pool.blocks_in_use(), 1);
/// drop(cache);
/// assert_eq!(pool.blocks_in_use(), 0); // blocks return on drop
/// assert_eq!(pool.blocks_created(), 1); // …and are recycled, not freed
/// ```
#[derive(Debug, Clone)]
pub struct KvBlockPool {
    shared: Arc<PoolShared>,
}

impl KvBlockPool {
    /// An unbounded pool with `block_tokens` positions per block.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    pub fn new(block_tokens: usize) -> Self {
        Self::with_budget(block_tokens, usize::MAX)
    }

    /// A pool capped at `max_blocks` total blocks — the capacity that
    /// admission control budgets against.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` or `max_blocks` is zero.
    pub fn with_budget(block_tokens: usize, max_blocks: usize) -> Self {
        assert!(block_tokens > 0, "block_tokens must be positive");
        assert!(max_blocks > 0, "max_blocks must be positive");
        Self {
            shared: Arc::new(PoolShared {
                block_tokens,
                max_blocks,
                state: Mutex::new(PoolState::default()),
            }),
        }
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> usize {
        self.shared.block_tokens
    }

    /// The block budget (`usize::MAX` when unbounded).
    pub fn max_blocks(&self) -> usize {
        self.shared.max_blocks
    }

    /// Blocks needed to hold `tokens` positions of one sequence in one
    /// layer's cache.
    pub fn blocks_for_tokens(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.shared.block_tokens)
    }

    /// Blocks currently held by live caches.
    pub fn blocks_in_use(&self) -> usize {
        self.state().in_use
    }

    /// Blocks sitting on the free list, ready for reuse.
    pub fn blocks_free(&self) -> usize {
        self.state().free.len()
    }

    /// Blocks created over the pool's lifetime and not yet dropped
    /// (free + in use). Bounded by **peak** concurrent usage, not by how
    /// many requests the pool has ever served.
    pub fn blocks_created(&self) -> usize {
        self.state().created
    }

    /// Blocks still available under the budget (free-list blocks plus
    /// blocks that may still be created).
    pub fn available_blocks(&self) -> usize {
        self.shared.max_blocks.saturating_sub(self.state().in_use)
    }

    /// Bytes of one block (keys + values), once the KV dimension is known.
    fn block_bytes(&self, dim: usize) -> u64 {
        2 * (self.shared.block_tokens * dim * std::mem::size_of::<f32>()) as u64
    }

    /// Total bytes of every block the pool has created (free + in use) —
    /// the pool's resident footprint.
    pub fn memory_bytes(&self) -> u64 {
        let state = self.state();
        state.created as u64 * self.block_bytes(state.dim)
    }

    /// Bytes of the blocks currently held by live caches — the
    /// O(live tokens) quantity admission control keeps bounded.
    pub fn in_use_bytes(&self) -> u64 {
        let state = self.state();
        state.in_use as u64 * self.block_bytes(state.dim)
    }

    fn state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        // Poison-tolerant: every mutation in the critical sections leaves
        // PoolState valid on its own (the budget/dimension asserts fire
        // between them, never mid-update), so a poisoned lock still guards
        // a consistent state — and `Drop` must be able to return blocks
        // during the very unwind that poisoned it.
        self.shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Hands out one block for `dim`-sized keys/values.
    ///
    /// # Panics
    ///
    /// Panics if the budget is exhausted (a serving layer must gate
    /// admission on [`available_blocks`](Self::available_blocks) so this
    /// never fires) or if `dim` disagrees with earlier allocations.
    fn alloc(&self, dim: usize) -> KvBlock {
        let mut state = self.state();
        if state.dim == 0 {
            state.dim = dim;
        } else {
            assert_eq!(
                state.dim, dim,
                "KV block pool is dimension-{} but a cache pushed dimension-{dim} vectors \
                 (one pool serves one model)",
                state.dim
            );
        }
        let block = match state.free.pop() {
            Some(block) => block,
            None => {
                assert!(
                    state.created < self.shared.max_blocks,
                    "KV block budget exhausted ({} blocks): admission control must keep \
                     worst-case reservations within the pool budget",
                    self.shared.max_blocks
                );
                state.created += 1;
                KvBlock::new(self.shared.block_tokens, dim)
            }
        };
        state.in_use += 1;
        block
    }

    /// Returns a block to the free list.
    fn release(&self, mut block: KvBlock) {
        block.reset();
        let mut state = self.state();
        state.free.push(block);
        state.in_use -= 1;
    }
}

/// One sequence's paged KV cache: a lazily grown block table over a shared
/// [`KvBlockPool`].
///
/// Tokens append in order; every `block_tokens`-th push allocates one more
/// block from the pool. [`clear`](Self::clear) and `Drop` return every
/// block, so a retired request's KV memory is reusable immediately.
#[derive(Debug)]
pub struct PagedKvCache {
    pool: KvBlockPool,
    blocks: Vec<KvBlock>,
    /// KV dimension, established by the first push (0 = none yet).
    dim: usize,
    /// Cached positions.
    len: usize,
}

impl PagedKvCache {
    /// An empty cache over `pool` (no blocks held yet).
    pub fn new(pool: &KvBlockPool) -> Self {
        Self {
            pool: pool.clone(),
            blocks: Vec::new(),
            dim: 0,
            len: 0,
        }
    }

    /// The pool this cache allocates from.
    pub fn pool(&self) -> &KvBlockPool {
        &self.pool
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Blocks currently held.
    pub fn blocks_held(&self) -> usize {
        self.blocks.len()
    }

    /// Positions the held blocks can store before the next allocation.
    pub fn capacity_tokens(&self) -> usize {
        self.blocks.len() * self.pool.block_tokens()
    }

    /// Appends one position, allocating a block from the pool when the
    /// current one is full.
    ///
    /// # Panics
    ///
    /// Panics if `key` and `value` differ in length or disagree with the
    /// dimension established by earlier pushes, or if the pool's block
    /// budget is exhausted.
    pub fn push(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), value.len(), "key/value length mismatch");
        if self.dim == 0 {
            assert!(!key.is_empty(), "kv dimension must be positive");
            self.dim = key.len();
        } else {
            assert_eq!(key.len(), self.dim, "kv dimension mismatch");
        }
        if self.len == self.capacity_tokens() {
            self.blocks.push(self.pool.alloc(self.dim));
        }
        let block = self.blocks.last_mut().expect("block allocated above");
        block.keys.extend_from_slice(key);
        block.values.extend_from_slice(value);
        self.len += 1;
    }

    fn slot(&self, t: usize) -> (usize, usize) {
        assert!(
            t < self.len,
            "position {t} out of bounds (len {})",
            self.len
        );
        let bt = self.pool.block_tokens();
        (t / bt, (t % bt) * self.dim)
    }

    /// The key vector cached at position `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`.
    pub fn key(&self, t: usize) -> &[f32] {
        let (block, offset) = self.slot(t);
        &self.blocks[block].keys[offset..offset + self.dim]
    }

    /// The value vector cached at position `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`.
    pub fn value(&self, t: usize) -> &[f32] {
        let (block, offset) = self.slot(t);
        &self.blocks[block].values[offset..offset + self.dim]
    }

    /// Returns every block to the pool and resets to an empty context.
    pub fn clear(&mut self) {
        for block in self.blocks.drain(..) {
            self.pool.release(block);
        }
        self.len = 0;
    }
}

impl Drop for PagedKvCache {
    fn drop(&mut self) {
        self.clear();
    }
}

impl Clone for PagedKvCache {
    /// Deep copy: fresh blocks from the same pool, contents copied.
    ///
    /// The copy's blocks are **not** covered by any scheduler-level
    /// admission reservation, and like any allocation this panics if it
    /// would exceed the pool's block budget — clone sessions only on
    /// unbounded pools (or with explicit headroom), not mid-serving.
    fn clone(&self) -> Self {
        let mut copy = Self::new(&self.pool);
        copy.dim = self.dim;
        for block in &self.blocks {
            let mut fresh = self.pool.alloc(self.dim.max(1));
            fresh.keys.extend_from_slice(&block.keys);
            fresh.values.extend_from_slice(&block.values);
            copy.blocks.push(fresh);
        }
        copy.len = self.len;
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_grow_lazily_and_return_on_clear() {
        let pool = KvBlockPool::new(4);
        let mut cache = PagedKvCache::new(&pool);
        assert_eq!(pool.blocks_in_use(), 0);
        for t in 0..9 {
            cache.push(&[t as f32; 2], &[t as f32 + 0.5; 2]);
        }
        // 9 tokens at 4 per block = 3 blocks, allocated only as needed.
        assert_eq!(cache.blocks_held(), 3);
        assert_eq!(pool.blocks_in_use(), 3);
        assert_eq!(cache.len(), 9);
        assert_eq!(cache.key(5), &[5.0; 2]);
        assert_eq!(cache.value(8), &[8.5; 2]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(pool.blocks_in_use(), 0);
        assert_eq!(pool.blocks_free(), 3);
        assert_eq!(pool.blocks_created(), 3);
    }

    #[test]
    fn released_blocks_are_recycled_not_recreated() {
        let pool = KvBlockPool::new(2);
        for _ in 0..5 {
            let mut cache = PagedKvCache::new(&pool);
            for t in 0..6 {
                cache.push(&[t as f32], &[t as f32]);
            }
        } // drop returns blocks each round
        assert_eq!(pool.blocks_created(), 3, "peak usage, not cumulative");
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn reads_match_a_contiguous_reference_across_block_boundaries() {
        let pool = KvBlockPool::new(3);
        let mut cache = PagedKvCache::new(&pool);
        let mut keys = Vec::new();
        let mut values = Vec::new();
        for t in 0..11 {
            let k: Vec<f32> = (0..4).map(|i| (t * 4 + i) as f32).collect();
            let v: Vec<f32> = (0..4).map(|i| -((t * 4 + i) as f32)).collect();
            cache.push(&k, &v);
            keys.push(k);
            values.push(v);
        }
        for t in 0..11 {
            assert_eq!(cache.key(t), &keys[t][..], "key {t}");
            assert_eq!(cache.value(t), &values[t][..], "value {t}");
        }
    }

    #[test]
    fn memory_accounting_tracks_blocks() {
        let pool = KvBlockPool::new(4);
        let mut cache = PagedKvCache::new(&pool);
        assert_eq!(pool.memory_bytes(), 0);
        for t in 0..5 {
            cache.push(&[t as f32; 8], &[t as f32; 8]);
        }
        // 2 blocks × 2 (k+v) × 4 tokens × 8 floats × 4 bytes.
        assert_eq!(pool.memory_bytes(), 2 * 2 * 4 * 8 * 4);
        assert_eq!(pool.in_use_bytes(), pool.memory_bytes());
        cache.clear();
        assert_eq!(pool.in_use_bytes(), 0);
        assert_eq!(
            pool.memory_bytes(),
            2 * 2 * 4 * 8 * 4,
            "free blocks stay resident"
        );
    }

    #[test]
    #[should_panic(expected = "KV block budget exhausted")]
    fn budget_exhaustion_panics_with_direction() {
        let pool = KvBlockPool::with_budget(2, 1);
        let mut cache = PagedKvCache::new(&pool);
        for t in 0..3 {
            cache.push(&[t as f32], &[t as f32]);
        }
    }

    #[test]
    fn available_blocks_tracks_budget() {
        let pool = KvBlockPool::with_budget(2, 4);
        assert_eq!(pool.available_blocks(), 4);
        let mut cache = PagedKvCache::new(&pool);
        for t in 0..4 {
            cache.push(&[t as f32], &[t as f32]);
        }
        assert_eq!(pool.available_blocks(), 2);
        drop(cache);
        assert_eq!(pool.available_blocks(), 4, "released blocks free budget");
    }

    #[test]
    fn clone_is_a_deep_copy_with_its_own_blocks() {
        let pool = KvBlockPool::new(2);
        let mut cache = PagedKvCache::new(&pool);
        for t in 0..3 {
            cache.push(&[t as f32; 2], &[t as f32; 2]);
        }
        let copy = cache.clone();
        assert_eq!(pool.blocks_in_use(), 4, "copy holds its own blocks");
        cache.push(&[9.0; 2], &[9.0; 2]);
        assert_eq!(copy.len(), 3);
        assert_eq!(copy.key(2), &[2.0; 2]);
    }

    #[test]
    fn pool_is_shared_across_clones() {
        let pool = KvBlockPool::new(2);
        let handle = pool.clone();
        let mut cache = PagedKvCache::new(&handle);
        cache.push(&[1.0], &[2.0]);
        assert_eq!(pool.blocks_in_use(), 1);
    }

    #[test]
    #[should_panic(expected = "one pool serves one model")]
    fn mixed_dimensions_on_one_pool_panic() {
        let pool = KvBlockPool::new(2);
        let mut a = PagedKvCache::new(&pool);
        a.push(&[1.0, 2.0], &[3.0, 4.0]);
        let mut b = PagedKvCache::new(&pool);
        b.push(&[1.0], &[2.0]);
    }
}
