//! Token samplers: the policy that turns a logit vector into the next token.
//!
//! Decoding engines produce logits; a [`Sampler`] owns the (seeded,
//! deterministic) policy that picks the token. Three policies cover the
//! serving surface:
//!
//! * [`Sampler::greedy`] — argmax, the paper's evaluation setting;
//! * [`Sampler::temperature`] — softmax sampling at a temperature;
//! * [`Sampler::top_k`] — softmax restricted to the `k` most likely tokens.
//!
//! Stochastic samplers draw from their own [`Prng`], so a sampler
//! constructed with the same seed reproduces the same token stream — the
//! property the request layer relies on for replayable generations.

use sparseinfer_tensor::{Prng, Vector};

/// A deterministic, seeded next-token sampling policy.
///
/// # Example
///
/// ```
/// use sparseinfer_model::sampling::Sampler;
/// use sparseinfer_tensor::Vector;
///
/// let logits = Vector::from_vec(vec![0.1, 2.0, -1.0]);
/// assert_eq!(Sampler::greedy().sample(&logits), Some(1));
///
/// // Same seed, same draws.
/// let mut a = Sampler::temperature(0.8, 7);
/// let mut b = Sampler::temperature(0.8, 7);
/// assert_eq!(a.sample(&logits), b.sample(&logits));
/// ```
#[derive(Debug, Clone)]
pub enum Sampler {
    /// Always pick the highest logit (first index on ties).
    Greedy,
    /// Softmax sampling at `temperature` from a seeded stream.
    Temperature {
        /// Softmax temperature (> 0).
        temperature: f64,
        /// The sampler's private random stream.
        rng: Prng,
    },
    /// Softmax sampling restricted to the `k` highest logits.
    TopK {
        /// How many of the top logits stay candidates.
        k: usize,
        /// Softmax temperature (> 0).
        temperature: f64,
        /// The sampler's private random stream.
        rng: Prng,
    },
}

impl Sampler {
    /// The argmax policy.
    pub fn greedy() -> Self {
        Sampler::Greedy
    }

    /// Softmax sampling at `temperature`, seeded. A non-positive or
    /// non-finite temperature degenerates to [`Sampler::greedy`] (the
    /// zero-temperature limit).
    pub fn temperature(temperature: f64, seed: u64) -> Self {
        if temperature <= 0.0 || !temperature.is_finite() {
            return Sampler::Greedy;
        }
        Sampler::Temperature {
            temperature,
            rng: Prng::seed(seed),
        }
    }

    /// Top-k softmax sampling at `temperature`, seeded. `k == 0` and
    /// non-positive temperatures degenerate to [`Sampler::greedy`].
    pub fn top_k(k: usize, temperature: f64, seed: u64) -> Self {
        if k == 0 || temperature <= 0.0 || !temperature.is_finite() {
            return Sampler::Greedy;
        }
        Sampler::TopK {
            k,
            temperature,
            rng: Prng::seed(seed),
        }
    }

    /// Short, stable policy name for printouts.
    pub fn name(&self) -> &'static str {
        match self {
            Sampler::Greedy => "greedy",
            Sampler::Temperature { .. } => "temperature",
            Sampler::TopK { .. } => "top-k",
        }
    }

    /// Whether this sampler draws randomness (false for greedy).
    pub fn is_stochastic(&self) -> bool {
        !matches!(self, Sampler::Greedy)
    }

    /// Picks the next token index from `logits`, or `None` on an empty
    /// vector.
    pub fn sample(&mut self, logits: &Vector) -> Option<usize> {
        if logits.is_empty() {
            return None;
        }
        match self {
            Sampler::Greedy => logits.argmax(),
            Sampler::Temperature { temperature, rng } => Some(draw_all(logits, *temperature, rng)),
            Sampler::TopK {
                k,
                temperature,
                rng,
            } => {
                let top = top_k_indices(logits, *k);
                Some(draw(logits, &top, *temperature, rng))
            }
        }
    }
}

/// Indices of the `k` largest logits, sorted descending by logit with
/// index-ascending tie-breaks (a unique, reproducible candidate order). One
/// O(V·log k) scan with a k-sized buffer — the decode hot path never pays a
/// vocab-sized allocation.
fn top_k_indices(logits: &Vector, k: usize) -> Vec<usize> {
    let k = k.min(logits.len());
    // `beats(a, b)`: candidate a ranks strictly ahead of candidate b.
    let beats = |a: usize, b: usize| match logits[a].partial_cmp(&logits[b]) {
        Some(std::cmp::Ordering::Greater) => true,
        Some(std::cmp::Ordering::Less) => false,
        _ => a < b,
    };
    let mut top: Vec<usize> = Vec::with_capacity(k + 1);
    for i in 0..logits.len() {
        if top.len() == k && !beats(i, top[k - 1]) {
            continue;
        }
        let pos = top.partition_point(|&j| beats(j, i));
        top.insert(pos, i);
        top.truncate(k);
    }
    top
}

/// Softmax draw over every index at `temperature` via inverse CDF — the
/// decode hot path, so no per-token allocation (three passes instead).
fn draw_all(logits: &Vector, temperature: f64, rng: &mut Prng) -> usize {
    let max = logits
        .iter()
        .fold(f64::NEG_INFINITY, |m, &v| m.max(v as f64));
    let weight = |v: f32| ((v as f64 - max) / temperature).exp();
    let total: f64 = logits.iter().map(|&v| weight(v)).sum();
    let mut u = rng.uniform() * total;
    for (i, &v) in logits.iter().enumerate() {
        u -= weight(v);
        if u <= 0.0 {
            return i;
        }
    }
    // Floating-point slack: fall back to the last index.
    logits.len() - 1
}

/// Softmax draw over `candidates` at `temperature` via inverse CDF.
fn draw(logits: &Vector, candidates: &[usize], temperature: f64, rng: &mut Prng) -> usize {
    let max = candidates
        .iter()
        .map(|&i| logits[i] as f64)
        .fold(f64::NEG_INFINITY, f64::max);
    let weight = |i: usize| ((logits[i] as f64 - max) / temperature).exp();
    let total: f64 = candidates.iter().map(|&i| weight(i)).sum();
    let mut u = rng.uniform() * total;
    for &i in candidates {
        u -= weight(i);
        if u <= 0.0 {
            return i;
        }
    }
    // Floating-point slack: fall back to the last candidate.
    *candidates.last().expect("non-empty candidates")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Vector {
        Vector::from_vec(vec![1.0, 3.0, 2.0, -1.0])
    }

    #[test]
    fn greedy_is_argmax() {
        assert_eq!(Sampler::greedy().sample(&logits()), Some(1));
    }

    #[test]
    fn samplers_are_reproducible_per_seed() {
        let l = logits();
        for make in [
            |s| Sampler::temperature(0.7, s),
            |s| Sampler::top_k(3, 0.7, s),
        ] {
            let mut a = make(42);
            let mut b = make(42);
            let draws_a: Vec<_> = (0..32).map(|_| a.sample(&l)).collect();
            let draws_b: Vec<_> = (0..32).map(|_| b.sample(&l)).collect();
            assert_eq!(draws_a, draws_b);
        }
    }

    #[test]
    fn different_seeds_eventually_diverge() {
        let l = logits();
        let mut a = Sampler::temperature(1.5, 1);
        let mut b = Sampler::temperature(1.5, 2);
        let same = (0..64).filter(|_| a.sample(&l) == b.sample(&l)).count();
        assert!(same < 64, "independent streams should disagree somewhere");
    }

    #[test]
    fn top_k_never_leaves_the_top_set() {
        let l = logits();
        let mut s = Sampler::top_k(2, 2.0, 9);
        for _ in 0..64 {
            let t = s.sample(&l).unwrap();
            assert!(t == 1 || t == 2, "token {t} outside top-2");
        }
    }

    #[test]
    fn zero_temperature_and_zero_k_degenerate_to_greedy() {
        assert!(!Sampler::temperature(0.0, 1).is_stochastic());
        assert!(!Sampler::top_k(0, 1.0, 1).is_stochastic());
        assert!(!Sampler::temperature(f64::NAN, 1).is_stochastic());
        assert_eq!(Sampler::temperature(-1.0, 3).sample(&logits()), Some(1));
    }

    #[test]
    fn greedy_breaks_ties_by_lowest_index() {
        // argmax over exact ties must be reproducible: first index wins.
        let tied = Vector::from_vec(vec![0.5, 2.0, 2.0, 2.0, -1.0]);
        for _ in 0..8 {
            assert_eq!(Sampler::greedy().sample(&tied), Some(1));
        }
    }

    #[test]
    fn top_k_candidate_set_breaks_ties_by_lowest_index() {
        // Four logits tie for the top; k=2 must deterministically keep the
        // two lowest-indexed of them, so every draw lands in {1, 2}.
        let tied = Vector::from_vec(vec![0.0, 7.0, 7.0, 7.0, 7.0, 3.0]);
        let mut s = Sampler::top_k(2, 1.0, 31);
        for _ in 0..64 {
            let t = s.sample(&tied).unwrap();
            assert!(t == 1 || t == 2, "tie-break let index {t} in");
        }
        // The same seed over the same tied logits replays identically —
        // tie handling must not introduce hidden order dependence.
        let mut a = Sampler::top_k(3, 0.9, 77);
        let mut b = Sampler::top_k(3, 0.9, 77);
        let draws_a: Vec<_> = (0..32).map(|_| a.sample(&tied)).collect();
        let draws_b: Vec<_> = (0..32).map(|_| b.sample(&tied)).collect();
        assert_eq!(draws_a, draws_b);
    }

    #[test]
    fn top_k_of_one_is_greedy_even_under_ties() {
        let tied = Vector::from_vec(vec![4.0, 9.0, 9.0, 2.0]);
        let mut s = Sampler::top_k(1, 5.0, 13);
        for _ in 0..32 {
            assert_eq!(s.sample(&tied), Some(1), "k=1 must argmax with ties");
        }
    }

    #[test]
    fn vanishing_temperature_degrades_to_greedy() {
        // As T → 0 the softmax collapses onto the argmax: a tiny but
        // positive temperature must reproduce greedy on every draw, for
        // both the full-vocab and the top-k samplers.
        let l = logits();
        let argmax = Sampler::greedy().sample(&l);
        let mut t = Sampler::temperature(1e-6, 5);
        let mut tk = Sampler::top_k(3, 1e-6, 5);
        assert!(t.is_stochastic(), "positive temperature stays a sampler");
        for _ in 0..128 {
            assert_eq!(t.sample(&l), argmax);
            assert_eq!(tk.sample(&l), argmax);
        }
    }

    #[test]
    fn empty_logits_sample_none() {
        assert_eq!(Sampler::greedy().sample(&Vector::zeros(0)), None);
        assert_eq!(Sampler::temperature(1.0, 0).sample(&Vector::zeros(0)), None);
    }

    #[test]
    fn low_temperature_concentrates_on_argmax() {
        let l = logits();
        let mut s = Sampler::temperature(0.05, 11);
        let hits = (0..128).filter(|_| s.sample(&l) == Some(1)).count();
        assert!(hits > 120, "argmax drawn {hits}/128 times at T=0.05");
    }
}
