//! A byte-level tokenizer.
//!
//! The evaluation tasks are synthetic text; a byte tokenizer (256 byte ids +
//! a few specials) keeps the substrate self-contained with no external vocab
//! files, while still producing realistic token-by-token decoding dynamics.

/// Token id of the beginning-of-sequence marker.
pub const BOS: u32 = 256;
/// Token id of the end-of-sequence marker.
pub const EOS: u32 = 257;
/// Token id used for padding.
pub const PAD: u32 = 258;
/// Total vocabulary size (256 bytes + specials).
pub const VOCAB_SIZE: usize = 259;

/// Byte-level tokenizer: one token per byte plus BOS/EOS/PAD specials.
///
/// # Example
///
/// ```
/// use sparseinfer_model::ByteTokenizer;
///
/// let tok = ByteTokenizer::new();
/// let ids = tok.encode("hi");
/// assert_eq!(ids, vec![sparseinfer_model::tokenizer::BOS, 104, 105]);
/// assert_eq!(tok.decode(&ids[1..]), "hi");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteTokenizer;

impl ByteTokenizer {
    /// Creates the tokenizer.
    pub fn new() -> Self {
        Self
    }

    /// Vocabulary size including specials.
    pub fn vocab_size(&self) -> usize {
        VOCAB_SIZE
    }

    /// Encodes text as `[BOS, byte, byte, ...]`.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::with_capacity(text.len() + 1);
        out.push(BOS);
        out.extend(text.bytes().map(u32::from));
        out
    }

    /// Decodes a token sequence back to text, skipping specials and invalid
    /// UTF-8 (replaced per `String::from_utf8_lossy`).
    pub fn decode(&self, ids: &[u32]) -> String {
        let bytes: Vec<u8> = ids
            .iter()
            .filter(|id| **id < 256)
            .map(|id| *id as u8)
            .collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Whether a token terminates generation.
    pub fn is_terminal(&self, id: u32) -> bool {
        id == EOS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_prepends_bos() {
        let t = ByteTokenizer::new();
        assert_eq!(t.encode("A"), vec![BOS, 65]);
        assert_eq!(t.encode(""), vec![BOS]);
    }

    #[test]
    fn round_trip_ascii() {
        let t = ByteTokenizer::new();
        let text = "12 + 34 = 46";
        assert_eq!(t.decode(&t.encode(text)), text);
    }

    #[test]
    fn round_trip_utf8() {
        let t = ByteTokenizer::new();
        let text = "héllo ↑";
        assert_eq!(t.decode(&t.encode(text)), text);
    }

    #[test]
    fn decode_skips_specials() {
        let t = ByteTokenizer::new();
        assert_eq!(t.decode(&[BOS, 104, EOS, 105, PAD]), "hi");
    }

    #[test]
    fn terminal_detection() {
        let t = ByteTokenizer::new();
        assert!(t.is_terminal(EOS));
        assert!(!t.is_terminal(BOS));
        assert!(!t.is_terminal(65));
    }

    #[test]
    fn vocab_covers_all_ids() {
        let t = ByteTokenizer::new();
        assert!(t.vocab_size() > EOS as usize);
        assert!(t.vocab_size() > PAD as usize);
    }
}
