//! Property-style tests for the model substrate, driven by seeded
//! pseudo-random sweeps (offline replacement for the `proptest` crate).

use sparseinfer_model::norm::RmsNorm;
use sparseinfer_model::{Activation, GatedMlp};
use sparseinfer_tensor::{Matrix, Prng, Vector};

fn finite_x(rng: &mut Prng) -> f32 {
    (rng.uniform() * 100.0 - 50.0) as f32
}

/// ReLU's sparsity predicate agrees with its output being exactly zero.
#[test]
fn relu_sparsity_predicate_is_exact() {
    let mut rng = Prng::seed(11);
    for _ in 0..512 {
        let x = finite_x(&mut rng);
        assert_eq!(
            Activation::Relu.is_sparse_at(x),
            Activation::Relu.apply(x) == 0.0
        );
    }
}

/// FATReLU dominates ReLU in sparsity for any positive threshold.
#[test]
fn fatrelu_is_sparser_than_relu() {
    let mut rng = Prng::seed(12);
    for _ in 0..512 {
        let x = finite_x(&mut rng);
        let t = (rng.uniform() * 5.0) as f32;
        if Activation::Relu.is_sparse_at(x) {
            assert!(Activation::FatRelu(t).is_sparse_at(x), "x={x} t={t}");
        }
    }
}

/// SiLU is bounded below by ≈ −0.2785 and is zero only at zero — the
/// "no exact sparsity" property motivating ReLUfication.
#[test]
fn silu_has_no_exact_zeros_except_origin() {
    let mut rng = Prng::seed(13);
    for _ in 0..512 {
        let x = finite_x(&mut rng);
        let y = Activation::Silu.apply(x);
        assert!(y >= -0.279, "silu({x}) = {y}");
        if x != 0.0 && x.abs() > 1e-3 && x > -30.0 {
            assert!(y != 0.0, "silu({x}) = {y}");
        }
    }
}

/// ReLUfication is idempotent and maps every activation to the ReLU family.
#[test]
fn relufication_is_idempotent() {
    let mut rng = Prng::seed(14);
    for _ in 0..64 {
        let t = (rng.uniform() * 2.0) as f32;
        for a in [
            Activation::Silu,
            Activation::Gelu,
            Activation::Relu,
            Activation::FatRelu(t),
        ] {
            let once = a.relufy();
            assert_eq!(once.relufy(), once);
            assert!(matches!(once, Activation::Relu | Activation::FatRelu(_)));
        }
    }
}

/// RMSNorm output of a unit-gain norm always has RMS ≈ 1 for nonzero
/// inputs.
#[test]
fn unit_rmsnorm_normalizes() {
    let mut rng = Prng::seed(15);
    for _ in 0..64 {
        let dim = 4 + rng.below(60);
        let values: Vec<f32> = (0..dim)
            .map(|_| (0.1 + rng.uniform() * 9.9) as f32)
            .collect();
        let norm = RmsNorm::unit(dim);
        let y = norm.forward(&Vector::from_vec(values));
        let rms = (y.as_slice().iter().map(|v| v * v).sum::<f32>() / dim as f32).sqrt();
        assert!((rms - 1.0).abs() < 1e-2, "rms {rms}");
    }
}

/// RMSNorm is scale-invariant: norm(c·x) == norm(x) for c > 0.
#[test]
fn rmsnorm_is_scale_invariant() {
    let mut rng = Prng::seed(16);
    for _ in 0..64 {
        let dim = 4 + rng.below(28);
        let values: Vec<f32> = (0..dim)
            .map(|_| (0.1 + rng.uniform() * 9.9) as f32)
            .collect();
        let c = (0.5 + rng.uniform() * 19.5) as f32;
        let norm = RmsNorm::unit(dim);
        let x = Vector::from_vec(values);
        let mut cx = x.clone();
        cx.scale(c);
        let a = norm.forward(&x);
        let b = norm.forward(&cx);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-2, "{u} vs {v} at c={c}");
        }
    }
}

/// The gated MLP is zero on the zero input (no biases anywhere).
#[test]
fn mlp_maps_zero_to_zero() {
    for seed in 0..32u64 {
        let mut rng = Prng::seed(seed);
        let k = 1 + rng.below(23);
        let d = 1 + rng.below(15);
        let mut m = || Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let mlp = GatedMlp::new(m(), m(), m(), Activation::Relu);
        let y = mlp.forward(&Vector::zeros(d));
        assert!(y.iter().all(|v| *v == 0.0), "seed {seed}");
    }
}

/// Gate pre-activation sign determines sparsity: h1[r] == 0 iff z[r] <= 0
/// under ReLU, for random weights and inputs.
#[test]
fn gate_sign_is_sparsity() {
    for seed in 0..32u64 {
        let k = 24;
        let d = 12;
        let mut rng = Prng::seed(seed);
        let mut m = || Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let mlp = GatedMlp::new(m(), m(), m(), Activation::Relu);
        let x = Vector::from_fn(d, |_| rng.normal(0.3, 1.0) as f32);
        let z = mlp.gate_preactivations(&x);
        let (_, h1) = mlp.forward_with_gate(&x);
        for r in 0..k {
            assert_eq!(h1[r] == 0.0, z[r] <= 0.0, "seed {seed} row {r}");
        }
    }
}
