//! Property-based tests for the model substrate.

use proptest::prelude::*;
use sparseinfer_model::norm::RmsNorm;
use sparseinfer_model::{Activation, GatedMlp};
use sparseinfer_tensor::{Matrix, Prng, Vector};

fn finite_x() -> impl Strategy<Value = f32> {
    -50.0f32..50.0
}

proptest! {
    /// ReLU's sparsity predicate agrees with its output being exactly zero.
    #[test]
    fn relu_sparsity_predicate_is_exact(x in finite_x()) {
        prop_assert_eq!(Activation::Relu.is_sparse_at(x), Activation::Relu.apply(x) == 0.0);
    }

    /// FATReLU dominates ReLU in sparsity for any positive threshold.
    #[test]
    fn fatrelu_is_sparser_than_relu(x in finite_x(), t in 0.0f32..5.0) {
        if Activation::Relu.is_sparse_at(x) {
            prop_assert!(Activation::FatRelu(t).is_sparse_at(x));
        }
    }

    /// SiLU is bounded below by ≈ −0.2785 and is zero only at zero — the
    /// "no exact sparsity" property motivating ReLUfication.
    #[test]
    fn silu_has_no_exact_zeros_except_origin(x in finite_x()) {
        let y = Activation::Silu.apply(x);
        prop_assert!(y >= -0.279);
        if x != 0.0 && x.abs() > 1e-3 && x > -30.0 {
            prop_assert!(y != 0.0, "silu({}) = {}", x, y);
        }
    }

    /// ReLUfication is idempotent and maps every activation to the ReLU
    /// family.
    #[test]
    fn relufication_is_idempotent(t in 0.0f32..2.0) {
        for a in [Activation::Silu, Activation::Gelu, Activation::Relu, Activation::FatRelu(t)] {
            let once = a.relufy();
            prop_assert_eq!(once.relufy(), once);
            prop_assert!(matches!(once, Activation::Relu | Activation::FatRelu(_)));
        }
    }

    /// RMSNorm output of a unit-gain norm always has RMS ≈ 1 for nonzero
    /// inputs.
    #[test]
    fn unit_rmsnorm_normalizes(values in prop::collection::vec(0.1f32..10.0, 4..64)) {
        let dim = values.len();
        let norm = RmsNorm::unit(dim);
        let y = norm.forward(&Vector::from_vec(values));
        let rms = (y.as_slice().iter().map(|v| v * v).sum::<f32>() / dim as f32).sqrt();
        prop_assert!((rms - 1.0).abs() < 1e-2, "rms {}", rms);
    }

    /// RMSNorm is scale-invariant: norm(c·x) == norm(x) for c > 0.
    #[test]
    fn rmsnorm_is_scale_invariant(
        values in prop::collection::vec(0.1f32..10.0, 4..32),
        c in 0.5f32..20.0,
    ) {
        let dim = values.len();
        let norm = RmsNorm::unit(dim);
        let x = Vector::from_vec(values);
        let mut cx = x.clone();
        cx.scale(c);
        let a = norm.forward(&x);
        let b = norm.forward(&cx);
        for (u, v) in a.iter().zip(b.iter()) {
            prop_assert!((u - v).abs() < 1e-2, "{} vs {}", u, v);
        }
    }

    /// The gated MLP is zero on the zero input (no biases anywhere).
    #[test]
    fn mlp_maps_zero_to_zero(seed in 0u64..200, k in 1usize..24, d in 1usize..16) {
        let mut rng = Prng::seed(seed);
        let mut m = || Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let mlp = GatedMlp::new(m(), m(), m(), Activation::Relu);
        let y = mlp.forward(&Vector::zeros(d));
        prop_assert!(y.iter().all(|v| *v == 0.0));
    }

    /// Gate pre-activation sign determines sparsity: h1[r] == 0 iff z[r] <= 0
    /// under ReLU, for random weights and inputs.
    #[test]
    fn gate_sign_is_sparsity(seed in 0u64..200) {
        let k = 24;
        let d = 12;
        let mut rng = Prng::seed(seed);
        let mut m = || Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let mlp = GatedMlp::new(m(), m(), m(), Activation::Relu);
        let x = Vector::from_fn(d, |_| rng.normal(0.3, 1.0) as f32);
        let z = mlp.gate_preactivations(&x);
        let (_, h1) = mlp.forward_with_gate(&x);
        for r in 0..k {
            prop_assert_eq!(h1[r] == 0.0, z[r] <= 0.0, "row {}", r);
        }
    }
}
