//! Property-style tests for the predictor crate, driven by seeded
//! pseudo-random sweeps (offline replacement for the `proptest` crate).

use sparseinfer_predictor::{AlphaSchedule, SignBitPredictor, SkipMask, SparsityPredictor};
use sparseinfer_tensor::{Matrix, Prng, Vector};

/// Eq. (2) monotonicity: raising alpha can only turn skips into non-skips,
/// never the reverse — for every row count and total.
#[test]
fn decide_is_monotone_in_alpha() {
    let mut rng = Prng::seed(21);
    for _ in 0..512 {
        let n_neg = rng.below(2048) as u32;
        let total = n_neg + rng.below(2048) as u32;
        let mut prev_skip = true;
        for alpha in [50u32, 80, 100, 101, 103, 120, 200, 400] {
            let skip = SignBitPredictor::decide(n_neg, total, alpha);
            if !prev_skip {
                assert!(
                    !skip,
                    "skip reappeared at alpha {alpha} (n_neg={n_neg}, total={total})"
                );
            }
            prev_skip = skip;
        }
    }
}

/// At alpha = 1.00 the rule is exactly the majority test N_neg > N_pos.
#[test]
fn decide_at_unit_alpha_is_majority() {
    let mut rng = Prng::seed(22);
    for _ in 0..2048 {
        let n_neg = rng.below(4096) as u32;
        let total = n_neg + rng.below(4096) as u32;
        let n_pos = total - n_neg;
        assert_eq!(SignBitPredictor::decide(n_neg, total, 100), n_neg > n_pos);
    }
}

/// The packed predictor agrees with a scalar reimplementation of Eq. (2) on
/// random matrices and inputs.
#[test]
fn predictor_matches_scalar_reference() {
    for seed in 0..48u64 {
        let d = 64usize;
        let mut rng = Prng::seed(seed);
        let k = 1 + rng.below(23);
        let alpha = *rng.choose(&[100u32, 101, 103, 150]);
        let gate = Matrix::from_fn(k, d, |_, _| rng.normal(-0.05, 1.0) as f32);
        let x = Vector::from_fn(d, |_| rng.normal(0.4, 1.0) as f32);
        let mut p = SignBitPredictor::from_gate_matrices(
            std::slice::from_ref(&gate),
            AlphaSchedule::PerLayer(vec![alpha]),
        );
        let mask = p.predict(0, &x);
        for r in 0..k {
            let n_neg = gate
                .row(r)
                .iter()
                .zip(x.as_slice())
                .filter(|(w, xi)| w.is_sign_negative() != xi.is_sign_negative())
                .count() as u32;
            let expect = SignBitPredictor::decide(n_neg, d as u32, alpha);
            assert_eq!(mask.is_skipped(r), expect, "seed {seed} row {r}");
        }
    }
}

/// Mask union is commutative, associative, idempotent and monotone.
#[test]
fn skip_mask_union_laws() {
    let mut rng = Prng::seed(23);
    for trial in 0..128 {
        let len = 1 + rng.below(199);
        let a = SkipMask::from_fn(len, |_| rng.flip(0.5));
        let b = SkipMask::from_fn(len, |_| rng.flip(0.5));

        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        assert_eq!(&ab, &ba, "trial {trial}: union must commute");

        let mut aa = a.clone();
        aa.union_with(&a);
        assert_eq!(&aa, &a, "trial {trial}: union must be idempotent");

        assert!(ab.skip_count() >= a.skip_count().max(b.skip_count()));
        for i in 0..len {
            assert_eq!(ab.is_skipped(i), a.is_skipped(i) || b.is_skipped(i));
        }
    }
}

/// skip_count + active_rows always partition the mask.
#[test]
fn mask_partition_invariant() {
    let mut rng = Prng::seed(24);
    for _ in 0..128 {
        let len = rng.below(300);
        let mask = SkipMask::from_fn(len, |_| rng.flip(0.3));
        assert_eq!(mask.skip_count() + mask.active_rows().count(), len);
        assert_eq!(mask.skipped_rows().count(), mask.skip_count());
    }
}

/// Raising alpha never increases the number of predicted-sparse rows.
#[test]
fn higher_alpha_never_skips_more() {
    for seed in 0..32u64 {
        let d = 96usize;
        let k = 32usize;
        let mut rng = Prng::seed(seed);
        let gate = Matrix::from_fn(k, d, |_, _| rng.normal(-0.03, 1.0) as f32);
        let x = Vector::from_fn(d, |_| rng.normal(0.3, 1.0) as f32);
        let mut last = usize::MAX;
        for alpha in [1.0f64, 1.05, 1.2, 1.6, 2.5] {
            let mut p = SignBitPredictor::from_gate_matrices(
                std::slice::from_ref(&gate),
                AlphaSchedule::uniform(alpha),
            );
            let count = p.predict(0, &x).skip_count();
            assert!(count <= last, "seed {seed} alpha {alpha}: {count} > {last}");
            last = count;
        }
    }
}
