//! Property-based tests for the predictor crate.

use proptest::prelude::*;
use sparseinfer_predictor::{AlphaSchedule, SignBitPredictor, SkipMask, SparsityPredictor};
use sparseinfer_tensor::{Matrix, Prng, Vector};

proptest! {
    /// Eq. (2) monotonicity: raising alpha can only turn skips into
    /// non-skips, never the reverse — for every row count and total.
    #[test]
    fn decide_is_monotone_in_alpha(n_neg in 0u32..2048, extra in 0u32..2048) {
        let total = n_neg + extra;
        let mut prev_skip = true;
        for alpha in [50u32, 80, 100, 101, 103, 120, 200, 400] {
            let skip = SignBitPredictor::decide(n_neg, total, alpha);
            if !prev_skip {
                prop_assert!(!skip, "skip reappeared at alpha {alpha} (n_neg={n_neg}, total={total})");
            }
            prev_skip = skip;
        }
    }

    /// At alpha = 1.00 the rule is exactly the majority test N_neg > N_pos.
    #[test]
    fn decide_at_unit_alpha_is_majority(n_neg in 0u32..4096, extra in 0u32..4096) {
        let total = n_neg + extra;
        let n_pos = total - n_neg;
        prop_assert_eq!(SignBitPredictor::decide(n_neg, total, 100), n_neg > n_pos);
    }

    /// The packed predictor agrees with a scalar reimplementation of
    /// Eq. (2) on random matrices and inputs.
    #[test]
    fn predictor_matches_scalar_reference(
        seed in 0u64..500,
        k in 1usize..24,
        alpha in prop::sample::select(vec![100u32, 101, 103, 150])
    ) {
        let d = 64usize;
        let mut rng = Prng::seed(seed);
        let gate = Matrix::from_fn(k, d, |_, _| rng.normal(-0.05, 1.0) as f32);
        let x = Vector::from_fn(d, |_| rng.normal(0.4, 1.0) as f32);
        let mut p = SignBitPredictor::from_gate_matrices(
            std::slice::from_ref(&gate),
            AlphaSchedule::PerLayer(vec![alpha]),
        );
        let mask = p.predict(0, &x);
        for r in 0..k {
            let n_neg = gate
                .row(r)
                .iter()
                .zip(x.as_slice())
                .filter(|(w, xi)| w.is_sign_negative() != xi.is_sign_negative())
                .count() as u32;
            let expect = SignBitPredictor::decide(n_neg, d as u32, alpha);
            prop_assert_eq!(mask.is_skipped(r), expect, "row {}", r);
        }
    }

    /// Mask union is commutative, associative, idempotent and monotone.
    #[test]
    fn skip_mask_union_laws(
        a_bits in prop::collection::vec(any::<bool>(), 1..200),
        b_bits in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let len = a_bits.len().min(b_bits.len());
        let a = SkipMask::from_fn(len, |i| a_bits[i]);
        let b = SkipMask::from_fn(len, |i| b_bits[i]);

        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(&ab, &ba); // commutative

        let mut aa = a.clone();
        aa.union_with(&a);
        prop_assert_eq!(&aa, &a); // idempotent

        prop_assert!(ab.skip_count() >= a.skip_count().max(b.skip_count())); // monotone
        for i in 0..len {
            prop_assert_eq!(ab.is_skipped(i), a.is_skipped(i) || b.is_skipped(i));
        }
    }

    /// skip_count + active_rows always partition the mask.
    #[test]
    fn mask_partition_invariant(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let mask = SkipMask::from_fn(bits.len(), |i| bits[i]);
        prop_assert_eq!(mask.skip_count() + mask.active_rows().count(), bits.len());
        prop_assert_eq!(mask.skipped_rows().count(), mask.skip_count());
    }

    /// Raising alpha never increases the number of predicted-sparse rows.
    #[test]
    fn higher_alpha_never_skips_more(seed in 0u64..300) {
        let d = 96usize;
        let k = 32usize;
        let mut rng = Prng::seed(seed);
        let gate = Matrix::from_fn(k, d, |_, _| rng.normal(-0.03, 1.0) as f32);
        let x = Vector::from_fn(d, |_| rng.normal(0.3, 1.0) as f32);
        let mut last = usize::MAX;
        for alpha in [1.0f64, 1.05, 1.2, 1.6, 2.5] {
            let mut p = SignBitPredictor::from_gate_matrices(
                std::slice::from_ref(&gate),
                AlphaSchedule::uniform(alpha),
            );
            let count = p.predict(0, &x).skip_count();
            prop_assert!(count <= last, "alpha {alpha}: {count} > {last}");
            last = count;
        }
    }
}
