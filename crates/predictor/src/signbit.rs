//! The SparseInfer sign-bit predictor (paper §IV-A, §IV-B1/2).
//!
//! At model-load time the sign bits of every `W_gate` are packed 32-per-word
//! ([`PackedSignMatrix`]); per token the input's signs are packed the same
//! way, and each row's decision is one XOR + popcount sweep:
//!
//! ```text
//! N_neg = Σ_w popcount(sign_words(W_gate,row) XOR sign_words(X))
//! skip  =  N_neg · 100  >  (d − N_neg) · alpha_int        (integer form)
//! ```
//!
//! which is Eq. (2), `alpha · N_pos < N_neg`, in the integer arithmetic the
//! CUDA kernel uses. (Listing 1 in the paper prints the two branch
//! assignments swapped relative to its own prose — more predicted-negative
//! products must mean *skip*; we implement the prose/Eq. 2 semantics and
//! note the typo here.)

use sparseinfer_model::Model;
use sparseinfer_tensor::sign::{pack_signs_into, PackedSignMatrix, SignPack};
use sparseinfer_tensor::{Matrix, Vector};

use crate::alpha::AlphaSchedule;
use crate::mask::SkipMask;
use crate::traits::{PredictorScratch, SparsityPredictor};

/// Training-free sign-bit activation sparsity predictor.
///
/// # Example
///
/// ```
/// use sparseinfer_predictor::{AlphaSchedule, SignBitPredictor, SparsityPredictor};
/// use sparseinfer_tensor::{Matrix, Vector};
///
/// // One layer whose single gate row is the negation of the input signs:
/// // every product is negative, so the row is predicted sparse.
/// let w_gate = Matrix::from_fn(1, 32, |_, _| -1.0);
/// let mut p = SignBitPredictor::from_gate_matrices(&[w_gate], AlphaSchedule::uniform(1.0));
/// let x = Vector::from_fn(32, |_| 1.0);
/// assert!(p.predict(0, &x).is_skipped(0));
/// ```
#[derive(Debug, Clone)]
pub struct SignBitPredictor {
    layers: Vec<PackedSignMatrix>,
    schedule: AlphaSchedule,
}

impl SignBitPredictor {
    /// Packs the gate sign bits of every layer of `model` (the one-time
    /// load-time step of §IV-B1).
    pub fn from_model(model: &Model, schedule: AlphaSchedule) -> Self {
        let layers = model
            .layers()
            .iter()
            .map(|l| PackedSignMatrix::pack(l.mlp().w_gate()))
            .collect();
        Self { layers, schedule }
    }

    /// Builds from raw gate matrices (one per layer).
    pub fn from_gate_matrices(gates: &[Matrix], schedule: AlphaSchedule) -> Self {
        Self {
            layers: gates.iter().map(PackedSignMatrix::pack).collect(),
            schedule,
        }
    }

    /// Builds from already-packed sign matrices — the INT8/FP16 path, where
    /// signs were extracted from the quantized storage format.
    pub fn from_packed(layers: Vec<PackedSignMatrix>, schedule: AlphaSchedule) -> Self {
        Self { layers, schedule }
    }

    /// The alpha schedule.
    pub fn schedule(&self) -> &AlphaSchedule {
        &self.schedule
    }

    /// Replaces the alpha schedule (the DSE knob — no re-packing needed,
    /// which is the point of a training-free predictor).
    pub fn set_schedule(&mut self, schedule: AlphaSchedule) {
        self.schedule = schedule;
    }

    /// Total packed-sign memory across layers in bytes (§V-A2 accounting).
    pub fn memory_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.size_bytes()).sum()
    }

    /// Per-row predicted-negative counts for one layer — the raw `N_neg`
    /// values before thresholding. Exposed for instrumentation and for the
    /// threshold-sweep experiments.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or `x` has the wrong length.
    pub fn negative_counts(&self, layer: usize, x: &Vector) -> Vec<u32> {
        let packed = &self.layers[layer];
        assert_eq!(x.len(), packed.cols(), "input length mismatch");
        let x_signs = SignPack::pack(x.as_slice());
        (0..packed.rows())
            .map(|r| packed.row_xor_popcount(r, &x_signs))
            .collect()
    }

    /// The integer decision rule shared by [`predict`](Self::predict) and the
    /// GPU cost model: skip iff `n_neg · 100 > n_pos · alpha_percent`.
    #[inline]
    pub fn decide(n_neg: u32, total: u32, alpha_percent: u32) -> bool {
        debug_assert!(n_neg <= total);
        let n_pos = total - n_neg;
        u64::from(n_neg) * 100 > u64::from(n_pos) * u64::from(alpha_percent)
    }
}

impl SparsityPredictor for SignBitPredictor {
    fn predict_into(
        &self,
        layer: usize,
        x: &Vector,
        scratch: &mut PredictorScratch,
        mask: &mut SkipMask,
    ) {
        assert!(layer < self.layers.len(), "layer {layer} out of range");
        let packed = &self.layers[layer];
        assert_eq!(x.len(), packed.cols(), "input length mismatch");
        let alpha = self.schedule.alpha_percent(layer);
        let total = packed.cols() as u32;
        // The per-token sign pack goes into session scratch: packed sign
        // *tables* are shared across sessions, the input pack is not.
        pack_signs_into(x.as_slice(), &mut scratch.sign_words);
        mask.reset_dense(packed.rows());
        for r in 0..packed.rows() {
            let n_neg = packed.row_xor_popcount_words(r, &scratch.sign_words);
            if Self::decide(n_neg, total, alpha) {
                mask.set_skip(r);
            }
        }
    }

    fn name(&self) -> &'static str {
        "sparseinfer"
    }

    fn n_layers(&self) -> usize {
        self.layers.len()
    }

    fn prediction_cost(&self, layer: usize) -> crate::traits::PredictionCost {
        let packed = &self.layers[layer];
        let words = (packed.rows() * packed.row_words()) as u64;
        crate::traits::PredictionCost {
            // One XOR+popc per packed word per row: k · d/32 (Table I).
            xor_popc: words,
            macs: 0,
            // Sign table traffic plus the freshly packed input signs.
            bytes_loaded: words * 4 + (packed.cols() as u64 / 8),
        }
    }

    fn memory_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.size_bytes() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;
    use sparseinfer_tensor::Prng;

    fn anti_aligned_layer(d: usize, k: usize) -> Matrix {
        // Row r: negative everywhere for even r, positive for odd r.
        Matrix::from_fn(k, d, |r, _| if r % 2 == 0 { -1.0 } else { 1.0 })
    }

    #[test]
    fn fully_anti_aligned_rows_are_skipped() {
        let gate = anti_aligned_layer(64, 8);
        let mut p = SignBitPredictor::from_gate_matrices(
            std::slice::from_ref(&gate),
            AlphaSchedule::uniform(1.0),
        );
        let x = Vector::from_fn(64, |_| 0.5);
        let mask = p.predict(0, &x);
        for r in 0..8 {
            assert_eq!(mask.is_skipped(r), r % 2 == 0, "row {r}");
        }
    }

    #[test]
    fn decide_implements_eq2_integer_form() {
        // total = 100: at alpha=1.00 skip iff n_neg > 50.
        assert!(!SignBitPredictor::decide(50, 100, 100));
        assert!(SignBitPredictor::decide(51, 100, 100));
        // alpha = 1.03: 51·100 = 5100 vs 49·103 = 5047 → still skip;
        // 50.5 boundary shifts upward.
        assert!(SignBitPredictor::decide(51, 100, 103));
        // n_neg = 51, alpha = 1.10: 5100 vs 49·110 = 5390 → no skip.
        assert!(!SignBitPredictor::decide(51, 100, 110));
    }

    #[test]
    fn higher_alpha_is_monotonically_more_conservative() {
        for n_neg in 0..=64u32 {
            let mut prev = SignBitPredictor::decide(n_neg, 64, 100);
            for alpha in [101, 102, 105, 120, 200] {
                let now = SignBitPredictor::decide(n_neg, 64, alpha);
                // Once a row stops being skipped it must not reappear.
                assert!(!now || prev, "n_neg={n_neg} alpha={alpha}");
                prev = now;
            }
        }
    }

    #[test]
    fn negative_counts_match_scalar_reference() {
        let mut rng = Prng::seed(3);
        let d = 64;
        let k = 12;
        let gate = Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let x = Vector::from_fn(d, |_| rng.normal(0.2, 1.0) as f32);
        let p = SignBitPredictor::from_gate_matrices(
            std::slice::from_ref(&gate),
            AlphaSchedule::uniform(1.0),
        );
        let counts = p.negative_counts(0, &x);
        for (r, count) in counts.iter().enumerate().take(k) {
            let expected = gate
                .row(r)
                .iter()
                .zip(x.as_slice())
                .filter(|(w, xi)| w.is_sign_negative() != xi.is_sign_negative())
                .count() as u32;
            assert_eq!(*count, expected, "row {r}");
        }
    }

    #[test]
    fn from_model_covers_all_layers() {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 5).build();
        let p = SignBitPredictor::from_model(&model, AlphaSchedule::default());
        assert_eq!(p.n_layers(), cfg.n_layers);
        assert_eq!(
            p.memory_bytes(),
            cfg.n_layers * cfg.mlp_dim * (cfg.hidden_dim / 32) * 4
        );
    }

    #[test]
    fn predictions_beat_chance_on_calibrated_model() {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 6).build();
        let mut p = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(1.0));

        let mut correct = 0usize;
        let mut total = 0usize;
        let mut rng = Prng::seed(7);
        for _ in 0..40 {
            // Inputs shaped like the generator's target distribution.
            let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.5, 0.9) as f32);
            let mask = p.predict(0, &x);
            let z = model.layers()[0].mlp().gate_preactivations(&x);
            for r in 0..cfg.mlp_dim {
                let truly_sparse = z[r] <= 0.0;
                if mask.is_skipped(r) == truly_sparse {
                    correct += 1;
                }
                total += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.75, "prediction accuracy {acc:.3}");
    }

    #[test]
    fn schedule_swap_changes_behavior_without_repacking() {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 8).build();
        let mut p = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(1.0));
        let mut rng = Prng::seed(9);
        let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.4, 1.0) as f32);
        let loose = p.predict(0, &x).skip_count();
        p.set_schedule(AlphaSchedule::uniform(3.0));
        let tight = p.predict(0, &x).skip_count();
        assert!(tight <= loose, "tight {tight} loose {loose}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_layer_panics() {
        let gate = anti_aligned_layer(32, 4);
        let mut p = SignBitPredictor::from_gate_matrices(
            std::slice::from_ref(&gate),
            AlphaSchedule::default(),
        );
        let _ = p.predict(1, &Vector::zeros(32));
    }
}
