//! The conservativeness knob `alpha` and its per-layer schedules.
//!
//! Eq. (2) of the paper refines the majority-sign test to
//! `alpha · N_pos < N_neg`: `alpha > 1` demands a larger negative majority
//! before a row is declared sparse (conservative, fewer false skips),
//! `alpha < 1` skips more aggressively. The paper applies `alpha ∈
//! {1.01..1.03}` to the first 20 layers (where prediction is less precise)
//! and `alpha = 1.0` elsewhere, and uses `alpha` as the design-space
//! exploration knob trading speed against accuracy.
//!
//! Internally alphas are stored as integer *percent* values (`1.02 → 102`),
//! mirroring the CUDA kernel of Listing 1, which compares
//! `count · 100  >  (total − count) · alpha_int` in integer arithmetic.

/// A per-layer schedule of `alpha` values.
///
/// # Example
///
/// ```
/// use sparseinfer_predictor::AlphaSchedule;
///
/// // Paper setting: alpha = 1.03 for the first 20 layers, 1.0 after.
/// let schedule = AlphaSchedule::early_layers(1.03, 20);
/// assert_eq!(schedule.alpha_percent(0), 103);
/// assert_eq!(schedule.alpha_percent(19), 103);
/// assert_eq!(schedule.alpha_percent(20), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphaSchedule {
    /// The same alpha everywhere.
    Uniform(u32),
    /// `alpha_early` for layers `< n_early`, 1.00 elsewhere — the paper's
    /// configuration.
    EarlyLayers {
        /// Integer percent alpha for the early layers (e.g. 103).
        alpha_early: u32,
        /// Number of leading layers the early alpha applies to.
        n_early: usize,
    },
    /// Arbitrary per-layer values (indexed by layer, last value reused past
    /// the end).
    PerLayer(Vec<u32>),
}

impl AlphaSchedule {
    /// Uniform schedule from a float alpha (`1.02 → 102`).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 10]`.
    pub fn uniform(alpha: f64) -> Self {
        AlphaSchedule::Uniform(Self::to_percent(alpha))
    }

    /// Paper-style schedule: `alpha` for the first `n_early` layers, 1.0
    /// after.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 10]`.
    pub fn early_layers(alpha: f64, n_early: usize) -> Self {
        AlphaSchedule::EarlyLayers {
            alpha_early: Self::to_percent(alpha),
            n_early,
        }
    }

    /// Per-layer schedule from float alphas.
    ///
    /// # Panics
    ///
    /// Panics if `alphas` is empty or any value is out of `(0, 10]`.
    pub fn per_layer(alphas: &[f64]) -> Self {
        assert!(
            !alphas.is_empty(),
            "per-layer schedule needs at least one value"
        );
        AlphaSchedule::PerLayer(alphas.iter().map(|a| Self::to_percent(*a)).collect())
    }

    fn to_percent(alpha: f64) -> u32 {
        assert!(
            alpha > 0.0 && alpha <= 10.0,
            "alpha {alpha} out of the sensible range (0, 10]"
        );
        (alpha * 100.0).round() as u32
    }

    /// Integer percent alpha for `layer` (the value the device kernel uses).
    pub fn alpha_percent(&self, layer: usize) -> u32 {
        match self {
            AlphaSchedule::Uniform(a) => *a,
            AlphaSchedule::EarlyLayers {
                alpha_early,
                n_early,
            } => {
                if layer < *n_early {
                    *alpha_early
                } else {
                    100
                }
            }
            AlphaSchedule::PerLayer(v) => *v
                .get(layer)
                .unwrap_or_else(|| v.last().expect("per-layer schedule is non-empty")),
        }
    }

    /// Float alpha for `layer`.
    pub fn alpha(&self, layer: usize) -> f64 {
        self.alpha_percent(layer) as f64 / 100.0
    }
}

impl Default for AlphaSchedule {
    fn default() -> Self {
        AlphaSchedule::Uniform(100)
    }
}

/// Calibrates a per-layer alpha schedule from an activation trace: for each
/// layer, the smallest alpha in `grid` whose predictions reach
/// `target_precision` on the trace (the paper's "the optimal value for
/// alpha can be easily calibrated through test runs as the model changes").
///
/// Returns [`AlphaSchedule::PerLayer`]. Layers that never reach the target
/// get the largest grid value.
///
/// # Panics
///
/// Panics if `grid` is empty, not ascending, or the trace lacks samples for
/// some layer.
pub fn calibrate_per_layer(
    model: &sparseinfer_model::Model,
    trace: &sparseinfer_model::MlpTrace,
    grid: &[f64],
    target_precision: f64,
) -> AlphaSchedule {
    use crate::metrics::ConfusionCounts;
    use crate::signbit::SignBitPredictor;
    use crate::traits::SparsityPredictor;

    assert!(!grid.is_empty(), "alpha grid must be non-empty");
    assert!(
        grid.windows(2).all(|w| w[0] < w[1]),
        "alpha grid must be strictly ascending"
    );

    let n_layers = model.config().n_layers;
    let mut chosen = vec![*grid.last().expect("non-empty grid"); n_layers];
    let mut oracle = crate::oracle::OraclePredictor::from_model(model);

    for (li, alpha_out) in chosen.iter_mut().enumerate() {
        for alpha in grid {
            let mut predictor = SignBitPredictor::from_gate_matrices(
                std::slice::from_ref(model.layers()[li].mlp().w_gate()),
                AlphaSchedule::uniform(*alpha),
            );
            let mut counts = ConfusionCounts::default();
            for s in trace.layer_samples(li) {
                let predicted = predictor.predict(0, &s.x);
                let truth = oracle.predict(li, &s.x);
                counts.record(&predicted, &truth);
            }
            if counts.precision() >= target_precision {
                *alpha_out = *alpha;
                break;
            }
        }
    }
    AlphaSchedule::per_layer(&chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_applies_everywhere() {
        let s = AlphaSchedule::uniform(1.02);
        for l in [0, 5, 100] {
            assert_eq!(s.alpha_percent(l), 102);
            assert!((s.alpha(l) - 1.02).abs() < 1e-9);
        }
    }

    #[test]
    fn early_layers_switch_at_boundary() {
        let s = AlphaSchedule::early_layers(1.01, 3);
        assert_eq!(s.alpha_percent(2), 101);
        assert_eq!(s.alpha_percent(3), 100);
    }

    #[test]
    fn per_layer_reuses_last_value() {
        let s = AlphaSchedule::per_layer(&[1.0, 1.01, 1.02]);
        assert_eq!(s.alpha_percent(1), 101);
        assert_eq!(s.alpha_percent(7), 102);
    }

    #[test]
    fn default_is_neutral() {
        assert_eq!(AlphaSchedule::default().alpha_percent(0), 100);
    }

    #[test]
    #[should_panic(expected = "out of the sensible range")]
    fn absurd_alpha_rejected() {
        let _ = AlphaSchedule::uniform(42.0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_per_layer_rejected() {
        let _ = AlphaSchedule::per_layer(&[]);
    }

    #[test]
    fn calibration_picks_larger_alphas_for_imprecise_layers() {
        use sparseinfer_model::generator::WeightGenerator;
        use sparseinfer_model::{MlpTrace, ModelConfig};

        let mut cfg = ModelConfig::tiny();
        cfg.n_layers = 4;
        cfg.hidden_dim = 64;
        cfg.mlp_dim = 192;
        cfg.n_heads = 2;
        let model = WeightGenerator::new(&cfg, 61).build();
        let trace = MlpTrace::capture(&model, &(1..14).collect::<Vec<u32>>(), 0);

        let grid = [1.0, 1.05, 1.1, 1.2, 1.5];
        let schedule = calibrate_per_layer(&model, &trace, &grid, 0.97);
        // All chosen values come from the grid.
        for l in 0..cfg.n_layers {
            let a = schedule.alpha(l);
            assert!(grid.iter().any(|g| (g - a).abs() < 1e-9), "layer {l}: {a}");
        }
        // The imprecise early layer needs at least as much conservativeness
        // as the stabilized last layer (generator profile guarantees the
        // early layer is the borderline-heavy one).
        assert!(schedule.alpha(0) >= schedule.alpha(cfg.n_layers - 1));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn calibration_rejects_unsorted_grid() {
        use sparseinfer_model::generator::WeightGenerator;
        use sparseinfer_model::{MlpTrace, ModelConfig};
        let model = WeightGenerator::new(&ModelConfig::tiny(), 1).build();
        let trace = MlpTrace::capture(&model, &[1], 0);
        let _ = calibrate_per_layer(&model, &trace, &[1.1, 1.0], 0.9);
    }
}
