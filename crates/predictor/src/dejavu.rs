//! DejaVu-style *trained* low-rank predictor (the PowerInfer baseline).
//!
//! DEJAVU attaches a small two-layer network per MLP block: project the
//! input to a low rank `r`, apply a nonlinearity, and classify each of the
//! `k` intermediate units as active/sparse. PowerInfer ships these
//! predictors with its models (rank 1024 for ProSparse-13B). The drawbacks
//! the paper highlights — and this module makes concrete — are:
//!
//! * it must be **trained** per model (and retrained per quantization);
//! * its weights occupy `(d·r + r·k) · 2 bytes` per layer (1480 MB for 13B);
//! * inference costs `d·r + r·k` FP16 MACs per block, more than the sparse
//!   MLP itself (Table I).
//!
//! The implementation uses a fixed random first layer and trains the second
//! layer + bias with logistic-loss SGD on activation traces — the standard
//! random-features shortcut; op count and memory match the full DejaVu
//! formula, and the learned quality is enough to reach high precision on the
//! synthetic models.

use sparseinfer_model::{MlpTrace, Model};
use sparseinfer_tensor::{
    gemv::{gemv, gemv_into},
    Matrix, Prng, ThreadPool, Vector,
};

use crate::mask::SkipMask;
use crate::traits::{PredictorScratch, SparsityPredictor};

/// One layer's low-rank predictor: `score = B · relu(A·x) + bias`.
#[derive(Debug, Clone)]
pub struct DejaVuLayer {
    /// Fixed random projection, `r × d`.
    a: Matrix,
    /// Trained classifier, `k × r`.
    b: Matrix,
    /// Trained per-unit bias, length `k`.
    bias: Vector,
}

impl DejaVuLayer {
    fn hidden(&self, x: &Vector) -> Vector {
        let mut h = gemv(&self.a, x);
        for v in h.as_mut_slice() {
            *v = v.max(0.0);
        }
        h
    }

    /// Scores every unit; positive score ⇒ predicted active.
    pub fn scores(&self, x: &Vector) -> Vector {
        let h = self.hidden(x);
        let mut s = gemv(&self.b, &h);
        s.add_assign(&self.bias);
        s
    }
}

/// The full multi-layer DejaVu-style predictor.
#[derive(Debug, Clone)]
pub struct DejaVuPredictor {
    layers: Vec<DejaVuLayer>,
    rank: usize,
    /// Decision margin: a unit is skipped when `score < -margin`; raising the
    /// margin is the trained predictor's conservativeness knob (the analogue
    /// of SparseInfer's alpha).
    margin: f32,
}

impl DejaVuPredictor {
    /// The low-rank dimension.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The decision margin.
    pub fn margin(&self) -> f32 {
        self.margin
    }

    /// Sets the decision margin (≥ 0 is conservative).
    pub fn set_margin(&mut self, margin: f32) {
        self.margin = margin;
    }

    /// FP16 memory footprint of the predictor weights across layers
    /// (`(d·r + r·k) · 2` bytes per layer — §V-A2).
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| (l.a.element_count() + l.b.element_count()) * 2)
            .sum()
    }
}

impl SparsityPredictor for DejaVuPredictor {
    fn predict_into(
        &self,
        layer: usize,
        x: &Vector,
        scratch: &mut PredictorScratch,
        mask: &mut SkipMask,
    ) {
        assert!(layer < self.layers.len(), "layer {layer} out of range");
        let l = &self.layers[layer];
        let PredictorScratch { hidden, scores, .. } = scratch;
        let pool = ThreadPool::single();
        gemv_into(&l.a, x, &pool, hidden);
        for v in hidden.as_mut_slice() {
            *v = v.max(0.0);
        }
        gemv_into(&l.b, hidden, &pool, scores);
        scores.add_assign(&l.bias);
        let margin = self.margin;
        mask.reset_dense(scores.len());
        for (r, s) in scores.iter().enumerate() {
            if *s < -margin {
                mask.set_skip(r);
            }
        }
    }

    fn name(&self) -> &'static str {
        "dejavu"
    }

    fn n_layers(&self) -> usize {
        self.layers.len()
    }

    fn prediction_cost(&self, layer: usize) -> crate::traits::PredictionCost {
        let l = &self.layers[layer];
        let macs = (l.a.element_count() + l.b.element_count()) as u64;
        crate::traits::PredictionCost {
            xor_popc: 0,
            // d·r + r·k FP16 MACs per block (Table I).
            macs,
            bytes_loaded: macs * 2,
        }
    }

    fn memory_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| ((l.a.element_count() + l.b.element_count()) * 2) as u64)
            .sum()
    }
}

/// Training hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Low-rank dimension `r`.
    pub rank: usize,
    /// SGD epochs over the trace.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Weight of the positive (active) class in the loss; values > 1 push
    /// the predictor toward recall of active units, i.e. conservativeness.
    pub positive_weight: f32,
    /// RNG seed for the random projection and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            rank: 16,
            epochs: 12,
            learning_rate: 0.15,
            positive_weight: 2.0,
            seed: 0xDE7A,
        }
    }
}

/// Trains a [`DejaVuPredictor`] from activation traces.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// Trains one predictor layer per model layer from `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no samples for some layer.
    pub fn train(&self, model: &Model, trace: &MlpTrace) -> DejaVuPredictor {
        let cfg = model.config();
        let mut rng = Prng::seed(self.config.seed);
        let mut layers = Vec::with_capacity(cfg.n_layers);
        for layer in 0..cfg.n_layers {
            let samples: Vec<_> = trace.layer_samples(layer).collect();
            assert!(!samples.is_empty(), "no trace samples for layer {layer}");
            layers.push(self.train_layer(cfg.hidden_dim, cfg.mlp_dim, &samples, &mut rng));
        }
        DejaVuPredictor {
            layers,
            rank: self.config.rank,
            margin: 0.0,
        }
    }

    fn train_layer(
        &self,
        d: usize,
        k: usize,
        samples: &[&sparseinfer_model::trace::MlpSample],
        rng: &mut Prng,
    ) -> DejaVuLayer {
        let r = self.config.rank;
        let scale = 1.0 / (d as f64).sqrt();
        let mut proj_rng = rng.fork(1);
        let a = Matrix::from_fn(r, d, |_, _| proj_rng.normal(0.0, scale) as f32);
        let mut b = Matrix::zeros(k, r);
        let mut bias = Vector::zeros(k);

        // Precompute hidden features per sample.
        let hiddens: Vec<Vector> = samples
            .iter()
            .map(|s| {
                let mut h = gemv(&a, &s.x);
                for v in h.as_mut_slice() {
                    *v = v.max(0.0);
                }
                h
            })
            .collect();

        let lr = self.config.learning_rate;
        let w_pos = self.config.positive_weight;
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for &si in &order {
                let h = &hiddens[si];
                let preact = &samples[si].preact;
                for unit in 0..k {
                    // Logistic regression per unit: target 1 = active.
                    let target = if preact[unit] > 0.0 { 1.0f32 } else { 0.0 };
                    let logit: f32 = b
                        .row(unit)
                        .iter()
                        .zip(h.as_slice())
                        .map(|(w, hv)| w * hv)
                        .sum::<f32>()
                        + bias[unit];
                    let p = 1.0 / (1.0 + (-logit).exp());
                    let weight = if target > 0.5 { w_pos } else { 1.0 };
                    let grad = weight * (p - target);
                    let row = b.row_mut(unit);
                    for (w, hv) in row.iter_mut().zip(h.as_slice()) {
                        *w -= lr * grad * hv;
                    }
                    bias[unit] -= lr * grad;
                }
            }
        }

        DejaVuLayer { a, b, bias }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LayerMetrics;
    use crate::oracle::OraclePredictor;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;

    fn trained_setup() -> (Model, DejaVuPredictor, MlpTrace) {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 21).build();
        let trace = MlpTrace::capture(&model, &(1..20).collect::<Vec<u32>>(), 0);
        let predictor = Trainer::new(TrainConfig::default()).train(&model, &trace);
        (model, predictor, trace)
    }

    #[test]
    fn training_produces_all_layers() {
        let (model, predictor, _) = trained_setup();
        assert_eq!(predictor.n_layers(), model.config().n_layers);
        assert_eq!(predictor.rank(), 16);
    }

    #[test]
    fn trained_predictor_beats_chance() {
        let (model, mut predictor, trace) = trained_setup();
        let mut oracle = OraclePredictor::from_model(&model);
        let mut metrics = LayerMetrics::new(model.config().n_layers);
        for s in trace.samples() {
            let predicted = predictor.predict(s.layer, &s.x);
            let truth = oracle.predict(s.layer, &s.x);
            metrics.record(s.layer, &predicted, &truth);
        }
        let overall = metrics.overall();
        // Trained on its own trace it must separate active from sparse far
        // better than the ~90/10 base rate would by chance.
        assert!(
            overall.precision() > 0.9,
            "precision {}",
            overall.precision()
        );
        assert!(overall.recall() > 0.5, "recall {}", overall.recall());
    }

    #[test]
    fn margin_makes_prediction_more_conservative() {
        let (model, mut predictor, _) = trained_setup();
        let x = sparseinfer_tensor::Vector::from_fn(model.config().hidden_dim, |i| {
            ((i * 13) as f32 * 0.17).sin() + 0.4
        });
        let loose = predictor.predict(0, &x).skip_count();
        predictor.set_margin(2.0);
        let tight = predictor.predict(0, &x).skip_count();
        assert!(tight <= loose, "tight {tight} loose {loose}");
    }

    #[test]
    fn memory_matches_dejavu_formula() {
        let (model, predictor, _) = trained_setup();
        let cfg = model.config();
        let expected = cfg.n_layers * (cfg.hidden_dim * 16 + 16 * cfg.mlp_dim) * 2;
        assert_eq!(predictor.memory_bytes(), expected);
    }
}
