//! Predictor memory accounting (paper §V-A2).
//!
//! The paper's arithmetic, reproduced exactly:
//!
//! * PowerInfer/DejaVu at rank 1024 on ProSparse-13B:
//!   `(5120·1024 + 1024·13824) · 2 bytes · 40 layers = 1480 MiB`.
//! * SparseInfer packed signs: `13824 rows · 160 words · 4 bytes · 40 layers
//!   = 337.5 MiB` — a 4.38× reduction.

use sparseinfer_model::ModelConfig;

/// Bytes occupied by the SparseInfer packed-sign tables for `config`:
/// `k · (d/32) · 4 · n_layers`.
pub fn signbit_bytes(config: &ModelConfig) -> u64 {
    let words_per_row = (config.hidden_dim as u64).div_ceil(32);
    config.mlp_dim as u64 * words_per_row * 4 * config.n_layers as u64
}

/// Bytes occupied by a DejaVu-style FP16 predictor of rank `rank`:
/// `(d·r + r·k) · 2 · n_layers`.
pub fn dejavu_bytes(config: &ModelConfig, rank: usize) -> u64 {
    (config.hidden_dim as u64 * rank as u64 + rank as u64 * config.mlp_dim as u64)
        * 2
        * config.n_layers as u64
}

/// Convenience: mebibytes.
pub fn to_mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// The paper's headline ratio: DejaVu memory over SparseInfer memory.
pub fn memory_ratio(config: &ModelConfig, rank: usize) -> f64 {
    dejavu_bytes(config, rank) as f64 / signbit_bytes(config) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_13b_numbers_match_section_5a2() {
        let cfg = ModelConfig::prosparse_13b_paper();
        // 13824 × 160 × 4 × 40 = 337.5 MiB
        assert_eq!(signbit_bytes(&cfg), 13_824 * 160 * 4 * 40);
        assert!((to_mib(signbit_bytes(&cfg)) - 337.5).abs() < 1e-9);
        // (5120·1024 + 1024·13824) × 2 × 40 = 1480 MiB
        assert_eq!(
            dejavu_bytes(&cfg, 1024),
            (5120 * 1024 + 1024 * 13824) * 2 * 40
        );
        assert!((to_mib(dejavu_bytes(&cfg, 1024)) - 1480.0).abs() < 1.0);
        // Ratio ≈ 4.38×.
        assert!((memory_ratio(&cfg, 1024) - 4.38).abs() < 0.01);
    }

    #[test]
    fn signbit_memory_scales_with_dims() {
        let mut cfg = ModelConfig::tiny();
        let base = signbit_bytes(&cfg);
        cfg.n_layers *= 2;
        assert_eq!(signbit_bytes(&cfg), base * 2);
    }

    #[test]
    fn dejavu_memory_scales_with_rank() {
        let cfg = ModelConfig::tiny();
        assert_eq!(dejavu_bytes(&cfg, 32), 2 * dejavu_bytes(&cfg, 16));
    }
}
