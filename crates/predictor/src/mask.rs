//! Row skip masks.
//!
//! A [`SkipMask`] marks, for one MLP block and one token, which of the `k`
//! intermediate rows are predicted (or known) to be zero and can therefore be
//! skipped in the gate, up and down GEMVs. It is a plain bitset; the union
//! operation implements the paper's *actual sparsity* compensation — exact
//! zeros discovered after the gate GEMV are OR-ed into the predicted mask
//! before the later steps (§IV: "adjusted skip flags, which is the union of
//! the predicted sparsity or previous flags and the actual sparsity").

/// Per-row skip flags for one MLP block (true = skip).
///
/// # Example
///
/// ```
/// use sparseinfer_predictor::SkipMask;
///
/// let mut mask = SkipMask::all_dense(4);
/// mask.set_skip(1);
/// mask.set_skip(3);
/// assert_eq!(mask.skip_count(), 2);
/// assert_eq!(mask.sparsity(), 0.5);
/// assert!(mask.is_skipped(3));
/// assert_eq!(mask.active_rows().collect::<Vec<_>>(), vec![0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipMask {
    words: Vec<u64>,
    len: usize,
}

impl SkipMask {
    /// Creates a mask with every row active (nothing skipped).
    pub fn all_dense(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a mask with every row skipped.
    pub fn all_skipped(len: usize) -> Self {
        let mut mask = Self::all_dense(len);
        for i in 0..len {
            mask.set_skip(i);
        }
        mask
    }

    /// Builds a mask from a predicate over row indices (true = skip).
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut mask = Self::all_dense(len);
        for i in 0..len {
            if f(i) {
                mask.set_skip(i);
            }
        }
        mask
    }

    /// Builds the *actual sparsity* mask of a gate output: rows whose
    /// post-activation value is exactly zero.
    pub fn from_exact_zeros(h1: &sparseinfer_tensor::Vector) -> Self {
        Self::from_fn(h1.len(), |i| h1[i] == 0.0)
    }

    /// Resizes to `len` rows with every row active, reusing the existing
    /// word buffer (no allocation once its capacity suffices) — the
    /// in-place reset the allocation-free predictor path starts from.
    pub fn reset_dense(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Replaces this mask's contents with a copy of `other`, reusing the
    /// word buffer (the in-place analogue of `clone`).
    pub fn copy_from(&mut self, other: &SkipMask) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// In-place union with the exact zeros of a gate output — equivalent to
    /// `self.union_with(&SkipMask::from_exact_zeros(h1))` without the
    /// temporary mask (the hot-path form of actual-sparsity compensation).
    ///
    /// # Panics
    ///
    /// Panics if `h1.len() != self.len()`.
    pub fn union_exact_zeros(&mut self, h1: &sparseinfer_tensor::Vector) {
        assert_eq!(self.len, h1.len(), "mask length mismatch");
        for (i, v) in h1.iter().enumerate() {
            if *v == 0.0 {
                self.words[i / 64] |= 1u64 << (i % 64);
            }
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks row `i` as skipped.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set_skip(&mut self, i: usize) {
        assert!(i < self.len, "row {i} out of bounds ({} rows)", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Marks row `i` as active.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set_active(&mut self, i: usize) {
        assert!(i < self.len, "row {i} out of bounds ({} rows)", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether row `i` is skipped.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn is_skipped(&self, i: usize) -> bool {
        assert!(i < self.len, "row {i} out of bounds ({} rows)", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of skipped rows.
    pub fn skip_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of skipped rows (0 for an empty mask).
    pub fn sparsity(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.skip_count() as f64 / self.len as f64
    }

    /// In-place union: afterwards a row is skipped if it was skipped in
    /// *either* mask. This is the actual-sparsity compensation operator.
    ///
    /// # Panics
    ///
    /// Panics if the masks differ in length.
    pub fn union_with(&mut self, other: &SkipMask) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates over indices of rows that are *not* skipped.
    pub fn active_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |i| !self.is_skipped(*i))
    }

    /// Iterates over indices of skipped rows.
    pub fn skipped_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |i| self.is_skipped(*i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_tensor::Vector;

    #[test]
    fn all_dense_skips_nothing() {
        let m = SkipMask::all_dense(100);
        assert_eq!(m.skip_count(), 0);
        assert_eq!(m.sparsity(), 0.0);
        assert_eq!(m.active_rows().count(), 100);
    }

    #[test]
    fn all_skipped_skips_everything() {
        let m = SkipMask::all_skipped(70);
        assert_eq!(m.skip_count(), 70);
        assert_eq!(m.sparsity(), 1.0);
        assert_eq!(m.active_rows().count(), 0);
    }

    #[test]
    fn set_and_clear_round_trip() {
        let mut m = SkipMask::all_dense(65);
        m.set_skip(64);
        assert!(m.is_skipped(64));
        m.set_active(64);
        assert!(!m.is_skipped(64));
    }

    #[test]
    fn union_is_bitwise_or() {
        let a = SkipMask::from_fn(8, |i| i % 2 == 0);
        let mut b = SkipMask::from_fn(8, |i| i < 2);
        b.union_with(&a);
        let expected: Vec<usize> = vec![0, 1, 2, 4, 6];
        assert_eq!(b.skipped_rows().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn union_never_unskips() {
        let mut a = SkipMask::all_skipped(10);
        a.union_with(&SkipMask::all_dense(10));
        assert_eq!(a.skip_count(), 10);
    }

    #[test]
    fn from_exact_zeros_marks_zero_positions() {
        let h1 = Vector::from_vec(vec![0.0, 1.5, 0.0, 0.25]);
        let m = SkipMask::from_exact_zeros(&h1);
        assert!(m.is_skipped(0));
        assert!(!m.is_skipped(1));
        assert!(m.is_skipped(2));
        assert!(!m.is_skipped(3));
    }

    #[test]
    fn reset_copy_and_union_zeros_work_in_place() {
        let mut m = SkipMask::all_skipped(70);
        m.reset_dense(70);
        assert_eq!(m.skip_count(), 0);
        m.reset_dense(5);
        assert_eq!(m.len(), 5);

        let src = SkipMask::from_fn(8, |i| i % 2 == 0);
        m.copy_from(&src);
        assert_eq!(m, src);

        let h1 = Vector::from_vec(vec![1.0, 0.0, 3.0, 0.0, 5.0, 0.5, -1.0, 0.0]);
        let mut a = SkipMask::all_dense(8);
        a.union_exact_zeros(&h1);
        let mut b = SkipMask::all_dense(8);
        b.union_with(&SkipMask::from_exact_zeros(&h1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = SkipMask::all_dense(4);
        let _ = m.is_skipped(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_length_mismatch_panics() {
        let mut a = SkipMask::all_dense(4);
        a.union_with(&SkipMask::all_dense(5));
    }
}
