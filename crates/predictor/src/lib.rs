//! Activation sparsity predictors — the SparseInfer paper's core
//! contribution and its baselines.
//!
//! The central type is [`SignBitPredictor`]: a **training-free** predictor
//! that decides, per gate row, whether the pre-activation `X · W_gate,i`
//! will be negative (hence zero after ReLU) by comparing *only sign bits*:
//! XOR the packed signs of the row with the packed signs of `X`, popcount the
//! result to get the number of predicted-negative products `N_neg`, and
//! predict sparse when `alpha · N_pos < N_neg` (paper Eq. 2). The
//! conservativeness knob `alpha` is a per-layer schedule ([`AlphaSchedule`]),
//! set slightly above 1.0 for early layers whose input distributions are
//! degenerate.
//!
//! Baselines with the same [`SparsityPredictor`] interface:
//!
//! * [`DejaVuPredictor`] — a trained low-rank predictor in the style of
//!   DEJAVU/PowerInfer, with an in-crate [`dejavu::Trainer`];
//! * [`OraclePredictor`] — exact sparsity (computes the gate GEMV); upper
//!   bound and test reference;
//! * [`RandomPredictor`] — skips rows at random; reproduces the paper's
//!   "random selection at 90% sparsity gives 0% accuracy" sanity check.
//!
//! [`metrics`] measures per-layer precision/recall (paper Fig. 3) and
//! [`memory`] reproduces the predictor memory accounting (paper §V-A2).
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{ModelConfig, generator::WeightGenerator};
//! use sparseinfer_predictor::{AlphaSchedule, SignBitPredictor, SparsityPredictor};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 1).build();
//! let mut predictor = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(1.0));
//! let x = sparseinfer_tensor::Vector::from_fn(32, |i| (i as f32 * 0.3).sin() - 0.1);
//! let mask = predictor.predict(0, &x);
//! assert_eq!(mask.len(), 96); // one flag per gate row
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alpha;
pub mod dejavu;
pub mod mask;
pub mod memory;
pub mod metrics;
pub mod oracle;
pub mod random;
pub mod signbit;
pub mod traits;

pub use alpha::AlphaSchedule;
pub use dejavu::{DejaVuPredictor, TrainConfig, Trainer};
pub use mask::SkipMask;
pub use metrics::{ConfusionCounts, LayerMetrics};
pub use oracle::OraclePredictor;
pub use random::RandomPredictor;
pub use signbit::SignBitPredictor;
pub use traits::{PredictorScratch, SparsityPredictor};
