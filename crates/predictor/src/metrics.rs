//! Predictor quality metrics: per-layer precision and recall (paper Fig. 3).
//!
//! Definitions follow the paper exactly: *precision* is the fraction of
//! predicted-sparse elements that are truly sparse (a false positive here
//! wrongly zeroes a live activation and can hurt accuracy); *recall* is the
//! fraction of truly sparse elements the predictor captured (a miss here
//! only costs speed, not accuracy).

use crate::mask::SkipMask;

/// Confusion counts over (predicted sparse?, truly sparse?) pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Predicted sparse, truly sparse.
    pub true_positive: u64,
    /// Predicted sparse, actually active (the harmful case).
    pub false_positive: u64,
    /// Predicted active, truly sparse (missed speedup).
    pub false_negative: u64,
    /// Predicted active, truly active.
    pub true_negative: u64,
}

impl ConfusionCounts {
    /// Accumulates one (prediction, truth) mask pair.
    ///
    /// # Panics
    ///
    /// Panics if the masks differ in length.
    pub fn record(&mut self, predicted: &SkipMask, truth: &SkipMask) {
        assert_eq!(predicted.len(), truth.len(), "mask length mismatch");
        for i in 0..predicted.len() {
            match (predicted.is_skipped(i), truth.is_skipped(i)) {
                (true, true) => self.true_positive += 1,
                (true, false) => self.false_positive += 1,
                (false, true) => self.false_negative += 1,
                (false, false) => self.true_negative += 1,
            }
        }
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: &ConfusionCounts) {
        self.true_positive += other.true_positive;
        self.false_positive += other.false_positive;
        self.false_negative += other.false_negative;
        self.true_negative += other.true_negative;
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was predicted sparse
    /// (vacuously no harmful skips).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            1.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when nothing was truly sparse.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            1.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total number of recorded elements.
    pub fn total(&self) -> u64 {
        self.true_positive + self.false_positive + self.false_negative + self.true_negative
    }

    /// Fraction of elements that are truly sparse (the base rate).
    pub fn true_sparsity(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positive + self.false_negative) as f64 / self.total() as f64
    }

    /// Fraction of elements predicted sparse.
    pub fn predicted_sparsity(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positive + self.false_positive) as f64 / self.total() as f64
    }
}

/// Per-layer confusion counts (the data behind Fig. 3).
#[derive(Debug, Clone)]
pub struct LayerMetrics {
    layers: Vec<ConfusionCounts>,
}

impl LayerMetrics {
    /// Creates empty metrics for `n_layers` layers.
    pub fn new(n_layers: usize) -> Self {
        Self {
            layers: vec![ConfusionCounts::default(); n_layers],
        }
    }

    /// Records one mask pair for `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn record(&mut self, layer: usize, predicted: &SkipMask, truth: &SkipMask) {
        self.layers[layer].record(predicted, truth);
    }

    /// Counts for one layer.
    pub fn layer(&self, layer: usize) -> &ConfusionCounts {
        &self.layers[layer]
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Aggregate counts over all layers.
    pub fn overall(&self) -> ConfusionCounts {
        let mut total = ConfusionCounts::default();
        for l in &self.layers {
            total.merge(l);
        }
        total
    }

    /// `(precision, recall)` per layer — the two series of Fig. 3.
    pub fn precision_recall_series(&self) -> Vec<(f64, f64)> {
        self.layers
            .iter()
            .map(|c| (c.precision(), c.recall()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(bits: &[bool]) -> SkipMask {
        SkipMask::from_fn(bits.len(), |i| bits[i])
    }

    #[test]
    fn confusion_counts_all_four_cells() {
        let mut c = ConfusionCounts::default();
        let predicted = mask(&[true, true, false, false]);
        let truth = mask(&[true, false, true, false]);
        c.record(&predicted, &truth);
        assert_eq!(c.true_positive, 1);
        assert_eq!(c.false_positive, 1);
        assert_eq!(c.false_negative, 1);
        assert_eq!(c.true_negative, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn precision_recall_formulas() {
        let c = ConfusionCounts {
            true_positive: 90,
            false_positive: 10,
            false_negative: 30,
            true_negative: 70,
        };
        assert!((c.precision() - 0.9).abs() < 1e-12);
        assert!((c.recall() - 0.75).abs() < 1e-12);
        assert!((c.true_sparsity() - 0.6).abs() < 1e-12);
        assert!((c.predicted_sparsity() - 0.5).abs() < 1e-12);
        let f1 = c.f1();
        assert!((f1 - 2.0 * 0.9 * 0.75 / 1.65).abs() < 1e-12);
    }

    #[test]
    fn vacuous_cases_default_to_one() {
        let c = ConfusionCounts::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
    }

    #[test]
    fn perfect_predictor_scores_one() {
        let mut c = ConfusionCounts::default();
        let truth = mask(&[true, false, true, true]);
        c.record(&truth, &truth);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn layer_metrics_aggregate() {
        let mut m = LayerMetrics::new(2);
        m.record(0, &mask(&[true]), &mask(&[true]));
        m.record(1, &mask(&[true]), &mask(&[false]));
        let overall = m.overall();
        assert_eq!(overall.true_positive, 1);
        assert_eq!(overall.false_positive, 1);
        let series = m.precision_recall_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 1.0);
        assert_eq!(series[1].0, 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionCounts {
            true_positive: 1,
            ..Default::default()
        };
        let b = ConfusionCounts {
            false_negative: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.true_positive, 1);
        assert_eq!(a.false_negative, 2);
    }
}
