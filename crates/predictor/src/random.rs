//! Random skip baseline.
//!
//! The paper's §V-C sanity check: "random selection with the 90% activation
//! sparsity, instead of the prediction, resulted in 0% accuracy". This
//! predictor skips each row independently with a fixed probability,
//! demonstrating that the *selection* of which rows to skip — not merely the
//! amount skipped — is what preserves model quality.

use sparseinfer_tensor::{Prng, Vector};

use crate::mask::SkipMask;
use crate::traits::{PredictorScratch, SparsityPredictor};

/// Skips each row with probability `p`, independent of the input.
///
/// The random stream lives in the caller's [`PredictorScratch`], seeded
/// lazily from this predictor's base seed: every decode session draws its
/// own deterministic stream, so a request decodes identically whether it
/// runs alone, batched, or across different thread counts — the shared
/// predictor itself stays immutable.
#[derive(Debug, Clone)]
pub struct RandomPredictor {
    p: f64,
    rows: usize,
    layers: usize,
    seed: u64,
    /// Stream for the legacy one-shot [`predict`](SparsityPredictor::predict)
    /// convenience path only (it keeps advancing across calls, matching the
    /// pre-scratch behavior).
    rng: Prng,
}

impl RandomPredictor {
    /// Creates a random predictor for a model with `layers` layers of `rows`
    /// gate rows each.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64, rows: usize, layers: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        Self {
            p,
            rows,
            layers,
            seed,
            rng: Prng::seed(seed),
        }
    }

    /// The skip probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl SparsityPredictor for RandomPredictor {
    fn predict_into(
        &self,
        layer: usize,
        _x: &Vector,
        scratch: &mut PredictorScratch,
        mask: &mut SkipMask,
    ) {
        assert!(layer < self.layers, "layer {layer} out of range");
        let rng = scratch.rng.get_or_insert_with(|| Prng::seed(self.seed));
        mask.reset_dense(self.rows);
        for r in 0..self.rows {
            if rng.flip(self.p) {
                mask.set_skip(r);
            }
        }
    }

    fn predict(&mut self, layer: usize, _x: &Vector) -> SkipMask {
        assert!(layer < self.layers, "layer {layer} out of range");
        let p = self.p;
        let rng = &mut self.rng;
        SkipMask::from_fn(self.rows, |_| rng.flip(p))
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn n_layers(&self) -> usize {
        self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_rate_tracks_probability() {
        let mut p = RandomPredictor::new(0.9, 1000, 1, 1);
        let mask = p.predict(0, &Vector::zeros(4));
        let rate = mask.sparsity();
        assert!((rate - 0.9).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn zero_probability_skips_nothing() {
        let mut p = RandomPredictor::new(0.0, 64, 1, 2);
        assert_eq!(p.predict(0, &Vector::zeros(4)).skip_count(), 0);
    }

    #[test]
    fn masks_differ_between_calls() {
        let mut p = RandomPredictor::new(0.5, 256, 1, 3);
        let a = p.predict(0, &Vector::zeros(4));
        let b = p.predict(0, &Vector::zeros(4));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn invalid_probability_panics() {
        let _ = RandomPredictor::new(1.5, 8, 1, 4);
    }
}
