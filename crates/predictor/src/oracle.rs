//! Exact ("oracle") sparsity predictor.
//!
//! Computes the true gate pre-activations and marks exactly the rows the
//! activation will zero out. It costs a full gate GEMV, so it is useless as
//! an accelerator — its roles are (a) the upper bound on what any predictor
//! can deliver and (b) the ground-truth source for precision/recall
//! measurement and for verifying that sparse execution with a perfect mask
//! is bit-exact with dense execution.

use sparseinfer_model::{Activation, Model};
use sparseinfer_tensor::{gemv::gemv_into, Matrix, ThreadPool, Vector};

use crate::mask::SkipMask;
use crate::traits::{PredictorScratch, SparsityPredictor};

/// Oracle predictor: recomputes the gate GEMV and thresholds exactly.
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    gates: Vec<Matrix>,
    activations: Vec<Activation>,
}

impl OraclePredictor {
    /// Captures references to every layer's gate weights.
    pub fn from_model(model: &Model) -> Self {
        Self {
            gates: model
                .layers()
                .iter()
                .map(|l| l.mlp().w_gate().clone())
                .collect(),
            activations: model
                .layers()
                .iter()
                .map(|l| l.mlp().activation())
                .collect(),
        }
    }

    /// True per-row sparsity flags for one layer and input.
    pub fn exact_mask(&self, layer: usize, x: &Vector) -> SkipMask {
        let z = sparseinfer_tensor::gemv::gemv(&self.gates[layer], x);
        let act = self.activations[layer];
        SkipMask::from_fn(z.len(), |r| act.is_sparse_at(z[r]))
    }
}

impl SparsityPredictor for OraclePredictor {
    fn predict_into(
        &self,
        layer: usize,
        x: &Vector,
        scratch: &mut PredictorScratch,
        mask: &mut SkipMask,
    ) {
        assert!(layer < self.gates.len(), "layer {layer} out of range");
        gemv_into(
            &self.gates[layer],
            x,
            &ThreadPool::single(),
            &mut scratch.hidden,
        );
        let act = self.activations[layer];
        mask.reset_dense(scratch.hidden.len());
        for (r, z) in scratch.hidden.iter().enumerate() {
            if act.is_sparse_at(*z) {
                mask.set_skip(r);
            }
        }
    }

    fn name(&self) -> &'static str {
        "oracle"
    }

    fn n_layers(&self) -> usize {
        self.gates.len()
    }

    fn memory_bytes(&self) -> u64 {
        // The oracle holds a full copy of every gate matrix.
        self.gates
            .iter()
            .map(|g| (g.element_count() * 4) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;
    use sparseinfer_tensor::Prng;

    #[test]
    fn oracle_matches_activation_zeros_exactly() {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 11).build();
        let mut oracle = OraclePredictor::from_model(&model);
        let mut rng = Prng::seed(12);
        for layer in 0..cfg.n_layers {
            let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.3, 1.0) as f32);
            let mask = oracle.predict(layer, &x);
            let (_, h1) = model.layers()[layer].mlp().forward_with_gate(&x);
            for r in 0..cfg.mlp_dim {
                assert_eq!(mask.is_skipped(r), h1[r] == 0.0, "layer {layer} row {r}");
            }
        }
    }

    #[test]
    fn oracle_respects_fatrelu_threshold() {
        let cfg = ModelConfig::tiny();
        let mut model = WeightGenerator::new(&cfg, 13).build();
        for layer in model.layers_mut() {
            layer.mlp_mut().set_activation(Activation::FatRelu(0.2));
        }
        let mut oracle = OraclePredictor::from_model(&model);
        let mut rng = Prng::seed(14);
        let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.3, 1.0) as f32);
        let mask = oracle.predict(0, &x);
        let (_, h1) = model.layers()[0].mlp().forward_with_gate(&x);
        for r in 0..cfg.mlp_dim {
            assert_eq!(mask.is_skipped(r), h1[r] == 0.0, "row {r}");
        }
        // FATReLU masks strictly more than plain ReLU would.
        let z = model.layers()[0].mlp().gate_preactivations(&x);
        let relu_sparse = (0..cfg.mlp_dim).filter(|r| z[*r] <= 0.0).count();
        assert!(mask.skip_count() >= relu_sparse);
    }
}
