//! The common predictor interface.

use sparseinfer_tensor::Vector;

use crate::mask::SkipMask;

/// Per-layer cost of producing one prediction, in the units the paper's
/// Table I uses: bitwise 32-bit XOR+popcount pairs, weight-precision MACs,
/// and bytes loaded. Consumed by the sparse engine's op accounting and the
/// GPU cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionCost {
    /// 32-bit XOR + popcount pairs (the sign-bit predictor's currency).
    pub xor_popc: u64,
    /// Multiply–accumulates (the trained predictor's currency).
    pub macs: u64,
    /// Bytes loaded from memory (packed sign tables or predictor weights).
    pub bytes_loaded: u64,
}

/// A per-layer activation sparsity predictor.
///
/// Implementations receive the *normalized MLP input* `X` for a layer and
/// return a [`SkipMask`] over the layer's `k` intermediate rows (true =
/// predicted sparse, skip the row). Predictors may carry mutable state
/// (e.g. an RNG), hence `&mut self`. `Debug` is a supertrait so boxed
/// predictors compose with `#[derive(Debug)]` engines.
pub trait SparsityPredictor: std::fmt::Debug {
    /// Predicts the skip mask for `layer` given the MLP input `x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `layer` is out of range or `x` has the wrong
    /// dimension — both indicate plumbing bugs, not data-dependent errors.
    fn predict(&mut self, layer: usize, x: &Vector) -> SkipMask;

    /// Short, stable name used in experiment printouts.
    fn name(&self) -> &'static str;

    /// Number of layers this predictor covers.
    fn n_layers(&self) -> usize;

    /// The per-layer cost of one prediction. Defaults to free (used by the
    /// oracle and random baselines, which have no realizable hardware cost).
    fn prediction_cost(&self, _layer: usize) -> PredictionCost {
        PredictionCost::default()
    }
}

/// Boxed predictors forward to the inner implementation, so `Box<dyn
/// SparsityPredictor>` plugs into anything generic over predictors — the
/// ergonomic backbone of the engine builder's dynamic configuration.
impl<P: SparsityPredictor + ?Sized> SparsityPredictor for Box<P> {
    fn predict(&mut self, layer: usize, x: &Vector) -> SkipMask {
        (**self).predict(layer, x)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn n_layers(&self) -> usize {
        (**self).n_layers()
    }

    fn prediction_cost(&self, layer: usize) -> PredictionCost {
        (**self).prediction_cost(layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial in-module implementation proving object safety.
    #[derive(Debug)]
    struct NeverSkip {
        k: usize,
        layers: usize,
    }

    impl SparsityPredictor for NeverSkip {
        fn predict(&mut self, layer: usize, _x: &Vector) -> SkipMask {
            assert!(layer < self.layers);
            SkipMask::all_dense(self.k)
        }
        fn name(&self) -> &'static str {
            "never-skip"
        }
        fn n_layers(&self) -> usize {
            self.layers
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn SparsityPredictor> = Box::new(NeverSkip { k: 8, layers: 2 });
        let mask = boxed.predict(0, &Vector::zeros(4));
        assert_eq!(mask.skip_count(), 0);
        assert_eq!(boxed.name(), "never-skip");
        assert_eq!(boxed.n_layers(), 2);
    }
}
