//! The common predictor interface.
//!
//! Predictors split cleanly into **shared, read-only state** (packed sign
//! tables, DejaVu weights, oracle gate copies — the memory that dominates
//! §V-A2's accounting) and **per-session scratch** (the token's packed
//! input signs, low-rank hidden buffers, a random stream). The trait makes
//! that split explicit: [`SparsityPredictor::predict_into`] takes `&self`
//! plus a caller-owned [`PredictorScratch`], so one predictor behind an
//! `Arc` serves every slot of a batch concurrently — batch memory is O(1)
//! in in-flight requests, the way DejaVu-style shared predictors avoid
//! re-loading per-slot copies of the same tables — while each session keeps
//! its own scratch for isolation and determinism.

use sparseinfer_tensor::{Prng, Vector};

use crate::mask::SkipMask;

/// Per-layer cost of producing one prediction, in the units the paper's
/// Table I uses: bitwise 32-bit XOR+popcount pairs, weight-precision MACs,
/// and bytes loaded. Consumed by the sparse engine's op accounting and the
/// GPU cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionCost {
    /// 32-bit XOR + popcount pairs (the sign-bit predictor's currency).
    pub xor_popc: u64,
    /// Multiply–accumulates (the trained predictor's currency).
    pub macs: u64,
    /// Bytes loaded from memory (packed sign tables or predictor weights).
    pub bytes_loaded: u64,
}

/// Per-session mutable state and scratch buffers for predictions.
///
/// One scratch belongs to one decode session (engine); the predictor itself
/// stays immutable and shareable. All buffers are recycled across calls, so
/// steady-state prediction performs no heap allocation. Fields cover the
/// needs of every predictor family in the workspace; a predictor uses only
/// what it needs and external implementations may ignore the scratch
/// entirely.
#[derive(Debug, Clone, Default)]
pub struct PredictorScratch {
    /// Packed sign bits of the current input (sign-bit predictor).
    pub sign_words: Vec<u32>,
    /// Hidden/preactivation buffer (DejaVu low-rank features, oracle gate
    /// preactivations).
    pub hidden: Vector,
    /// Classifier score buffer (DejaVu).
    pub scores: Vector,
    /// Private random stream (random predictor), seeded lazily from the
    /// predictor's base seed so every session replays the same stream.
    pub rng: Option<Prng>,
}

impl PredictorScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes retained by this scratch (buffer capacities, matching
    /// `Workspace::pooled_bytes`) — the *per-session* predictor cost, as
    /// opposed to the shared
    /// [`memory_bytes`](SparsityPredictor::memory_bytes).
    pub fn memory_bytes(&self) -> u64 {
        (self.sign_words.capacity() * 4 + (self.hidden.capacity() + self.scores.capacity()) * 4)
            as u64
    }
}

/// A per-layer activation sparsity predictor.
///
/// Implementations receive the *normalized MLP input* `X` for a layer and
/// fill a [`SkipMask`] over the layer's `k` intermediate rows (true =
/// predicted sparse, skip the row). Shared state is read-only (`&self`);
/// anything mutable lives in the caller's [`PredictorScratch`], which is
/// what makes predictors `Send + Sync` and shareable across batch slots via
/// `Arc`. `Debug` is a supertrait so boxed predictors compose with
/// `#[derive(Debug)]` engines.
pub trait SparsityPredictor: std::fmt::Debug + Send + Sync {
    /// Predicts the skip mask for `layer` given the MLP input `x`, writing
    /// it into `mask` (resized in place; allocation-free once warm).
    ///
    /// # Panics
    ///
    /// Implementations panic if `layer` is out of range or `x` has the wrong
    /// dimension — both indicate plumbing bugs, not data-dependent errors.
    fn predict_into(
        &self,
        layer: usize,
        x: &Vector,
        scratch: &mut PredictorScratch,
        mask: &mut SkipMask,
    );

    /// Short, stable name used in experiment printouts.
    fn name(&self) -> &'static str;

    /// Number of layers this predictor covers.
    fn n_layers(&self) -> usize;

    /// The per-layer cost of one prediction. Defaults to free (used by the
    /// oracle and random baselines, which have no realizable hardware cost).
    fn prediction_cost(&self, _layer: usize) -> PredictionCost {
        PredictionCost::default()
    }

    /// Bytes of *shared* predictor state (packed sign tables, trained
    /// weights). Counted once per predictor regardless of how many sessions
    /// share it. Defaults to 0 for stateless baselines.
    fn memory_bytes(&self) -> u64 {
        0
    }

    /// Convenience one-shot prediction with a throwaway scratch —
    /// experiment and test ergonomics, not the serving hot path (allocates
    /// per call). Stateful predictors may override it to thread their own
    /// legacy mutable state (the random baseline does).
    fn predict(&mut self, layer: usize, x: &Vector) -> SkipMask {
        let mut scratch = PredictorScratch::new();
        let mut mask = SkipMask::all_dense(0);
        self.predict_into(layer, x, &mut scratch, &mut mask);
        mask
    }
}

/// Boxed predictors forward to the inner implementation, so `Box<dyn
/// SparsityPredictor>` plugs into anything generic over predictors — the
/// ergonomic backbone of the engine builder's dynamic configuration.
impl<P: SparsityPredictor + ?Sized> SparsityPredictor for Box<P> {
    fn predict_into(
        &self,
        layer: usize,
        x: &Vector,
        scratch: &mut PredictorScratch,
        mask: &mut SkipMask,
    ) {
        (**self).predict_into(layer, x, scratch, mask)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn n_layers(&self) -> usize {
        (**self).n_layers()
    }

    fn prediction_cost(&self, layer: usize) -> PredictionCost {
        (**self).prediction_cost(layer)
    }

    fn memory_bytes(&self) -> u64 {
        (**self).memory_bytes()
    }

    fn predict(&mut self, layer: usize, x: &Vector) -> SkipMask {
        (**self).predict(layer, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial in-module implementation proving object safety.
    #[derive(Debug)]
    struct NeverSkip {
        k: usize,
        layers: usize,
    }

    impl SparsityPredictor for NeverSkip {
        fn predict_into(
            &self,
            layer: usize,
            _x: &Vector,
            _scratch: &mut PredictorScratch,
            mask: &mut SkipMask,
        ) {
            assert!(layer < self.layers);
            mask.reset_dense(self.k);
        }
        fn name(&self) -> &'static str {
            "never-skip"
        }
        fn n_layers(&self) -> usize {
            self.layers
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn SparsityPredictor> = Box::new(NeverSkip { k: 8, layers: 2 });
        let mask = boxed.predict(0, &Vector::zeros(4));
        assert_eq!(mask.skip_count(), 0);
        assert_eq!(mask.len(), 8);
        assert_eq!(boxed.name(), "never-skip");
        assert_eq!(boxed.n_layers(), 2);
        assert_eq!(boxed.memory_bytes(), 0);
    }

    #[test]
    fn predictors_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Box<dyn SparsityPredictor>>();
        assert_send_sync::<std::sync::Arc<dyn SparsityPredictor>>();
    }

    #[test]
    fn scratch_reports_its_footprint() {
        let mut s = PredictorScratch::new();
        assert_eq!(s.memory_bytes(), 0);
        s.sign_words = vec![0; 10];
        assert!(s.memory_bytes() >= 40);
    }
}
