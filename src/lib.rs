//! Root facade for the workspace (see the `sparseinfer` crate).
#![forbid(unsafe_code)]
pub use sparseinfer::*;
