//! Serving-layer integration tests: the unified `Engine` API, the request
//! layer and the batch scheduler, exercised across predictor kinds.
//!
//! The load-bearing property: a `Batch` of concurrent sessions (mixed dense
//! and sparse engines) decodes each request **bit-identically** to running
//! that request alone — interleaving is pure scheduling.

use std::sync::Arc;

use sparseinfer::model::{generator::WeightGenerator, Model, ModelConfig, Sampler};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SparsityPredictor};
use sparseinfer::sparse::batch::Batch;
use sparseinfer::sparse::engine::{EngineBuilder, EngineOptions};
use sparseinfer::sparse::error::EngineError;
use sparseinfer::sparse::request::{generate, FinishReason, GenerateRequest, Priority};
use sparseinfer::sparse::scheduler::{Scheduler, SchedulerConfig};
use sparseinfer::tensor::ParallelOptions;

const EOS: u32 = sparseinfer::model::tokenizer::EOS;

fn test_model() -> Model {
    let mut cfg = ModelConfig::tiny();
    cfg.hidden_dim = 64;
    cfg.mlp_dim = 160;
    cfg.n_heads = 2;
    cfg.n_layers = 3;
    cfg.vocab_size = 300;
    WeightGenerator::new(&cfg, 99).build()
}

/// Builder for each engine kind in the mixed batch, keyed by slot index.
fn engine_for<'m>(model: &'m Model, kind: usize) -> Box<dyn sparseinfer::sparse::Engine + 'm> {
    match kind % 4 {
        0 => EngineBuilder::new(model).build(),
        1 => EngineBuilder::new(model)
            .signbit(AlphaSchedule::uniform(1.0))
            .build(),
        2 => EngineBuilder::new(model).oracle().build(),
        _ => EngineBuilder::new(model)
            .signbit(AlphaSchedule::early_layers(1.2, 2))
            .options(EngineOptions::with_actual_sparsity())
            .build(),
    }
    .expect("valid engine configuration")
}

#[test]
fn batched_decode_is_token_identical_to_sequential_for_every_engine_kind() {
    let model = test_model();
    // Six requests over four engine kinds, different prompts and lengths.
    let prompts: Vec<Vec<u32>> = vec![
        vec![1, 2, 3],
        vec![7, 8],
        vec![10, 20, 30, 40],
        vec![5],
        vec![9, 9, 9],
        vec![2, 4, 6, 8, 10],
    ];
    let budgets = [6usize, 9, 4, 7, 5, 8];

    // Sequential reference: each request alone.
    let solo: Vec<Vec<u32>> = prompts
        .iter()
        .zip(budgets)
        .enumerate()
        .map(|(i, (p, max_new))| {
            let mut e = engine_for(&model, i);
            generate(
                e.as_mut(),
                &GenerateRequest::new(p).max_new(max_new).stop_at(EOS),
            )
            .expect("non-empty prompt")
            .tokens
        })
        .collect();

    // The same requests through one round-robin scheduler.
    let mut batch = Batch::new();
    for (i, (p, max_new)) in prompts.iter().zip(budgets).enumerate() {
        batch
            .push(
                engine_for(&model, i),
                &GenerateRequest::new(p).max_new(max_new).stop_at(EOS),
            )
            .expect("non-empty prompt");
    }
    assert!(
        batch.len() >= 4,
        "acceptance floor: at least 4 concurrent sessions"
    );
    let outputs = batch.run();

    for (out, expected) in outputs.iter().zip(&solo) {
        assert_eq!(
            &out.tokens, expected,
            "request {} ({}) diverged between solo and batched decode",
            out.id, out.engine
        );
    }
}

#[test]
fn batched_stochastic_requests_replay_their_seeds() {
    let model = test_model();
    let req = GenerateRequest::new(&[3, 5, 7])
        .max_new(6)
        .sampler(Sampler::temperature(0.9, 4242));

    let solo = {
        let mut e = EngineBuilder::new(&model).build().unwrap();
        generate(e.as_mut(), &req).unwrap().tokens
    };

    let mut batch = Batch::new();
    // Surround the seeded request with unrelated traffic.
    batch
        .push(
            EngineBuilder::new(&model)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap(),
            &GenerateRequest::new(&[8, 8]).max_new(9),
        )
        .unwrap();
    let id = batch
        .push(EngineBuilder::new(&model).build().unwrap(), &req)
        .unwrap();
    batch
        .push(
            EngineBuilder::new(&model).oracle().build().unwrap(),
            &GenerateRequest::new(&[1]).max_new(3),
        )
        .unwrap();

    let outputs = batch.run();
    assert_eq!(
        outputs[id].tokens, solo,
        "seeded sampler must replay in a batch"
    );
}

/// The ROADMAP open item, closed: a 32-slot batch sharing one `Arc`ed
/// predictor holds **one** copy of the packed sign tables, so its memory
/// estimate is within a small per-session constant of a 1-slot batch.
#[test]
fn batch_memory_is_o1_in_slots_with_a_shared_predictor() {
    let model = test_model();
    let shared: Arc<dyn SparsityPredictor> = Arc::new(SignBitPredictor::from_model(
        &model,
        AlphaSchedule::uniform(1.0),
    ));

    let build_batch = |slots: usize| {
        let mut batch = Batch::new();
        for i in 0..slots {
            let engine = EngineBuilder::new(&model)
                .predictor_shared(Arc::clone(&shared))
                .build()
                .unwrap();
            batch
                .push(
                    engine,
                    &GenerateRequest::new(&[1, 2 + i as u32 % 7]).max_new(3),
                )
                .unwrap();
        }
        batch
    };

    // Warm both batches with a few decode ticks — but stop *before* any
    // request finishes, because finished slots retire and release their
    // memory (measured separately below): the estimates here must see
    // every slot live with steady-state buffer sizes.
    let warm_ticks = 4; // 2 prompt tokens + max_new 3 => finished on tick 5
    let mut one = build_batch(1);
    for _ in 0..warm_ticks {
        one.tick(|_| {});
    }
    assert_eq!(one.active_requests(), 1, "warm-up must keep the slot live");
    let est1 = one.memory_estimate();

    let mut thirty_two = build_batch(32);
    for _ in 0..warm_ticks {
        thirty_two.tick(|_| {});
    }
    assert_eq!(thirty_two.active_requests(), 32);
    let est32 = thirty_two.memory_estimate();

    // Shared predictor bytes are counted once, regardless of slot count —
    // the O(1) claim itself.
    assert_eq!(
        est32.shared_bytes, est1.shared_bytes,
        "shared predictor state must not scale with slots"
    );
    assert_eq!(est32.shared_bytes, shared.memory_bytes());
    assert!(est32.shared_bytes > 0);

    // Per-session state scales linearly with an *independently measured*
    // per-slot constant: the warm 32-slot batch must stay within the warm
    // 1-slot batch plus 31 per-slot shares (2x slack absorbs per-slot
    // buffer-size jitter). A regression that replicates predictor state
    // per slot (the pre-PR design) blows through this bound by ~31x the
    // packed-table size.
    let per_slot = est1.per_session_bytes;
    assert!(per_slot > 0, "warm slots must report their scratch");
    assert!(
        est32.total() <= est1.total() + 31 * 2 * per_slot,
        "32-slot total {} vs 1-slot total {} + 31·2·{per_slot}",
        est32.total(),
        est1.total()
    );
    // Run both batches to completion: every slot retires, releasing its
    // per-session scratch and KV cache — the estimate drops to zero.
    while thirty_two.tick(|_| {}) > 0 {}
    assert_eq!(thirty_two.active_requests(), 0);
    assert_eq!(thirty_two.len(), 32);
    assert_eq!(
        thirty_two.memory_estimate().total(),
        0,
        "a fully finished batch must hold no decode memory"
    );
}

/// Finished slots release their decode memory immediately: a batch that has
/// drained down to one live request costs what a 1-slot batch costs, within
/// a small constant — not O(total requests ever pushed).
#[test]
fn finished_slots_release_memory_while_the_batch_keeps_serving() {
    let model = test_model();
    let shared: Arc<dyn SparsityPredictor> = Arc::new(SignBitPredictor::from_model(
        &model,
        AlphaSchedule::uniform(1.0),
    ));
    fn push<'m>(
        model: &'m Model,
        shared: &Arc<dyn SparsityPredictor>,
        batch: &mut Batch<'m>,
        max_new: usize,
    ) {
        let engine = EngineBuilder::new(model)
            .predictor_shared(Arc::clone(shared))
            .build()
            .unwrap();
        batch
            .push(engine, &GenerateRequest::new(&[1, 2]).max_new(max_new))
            .unwrap();
    }

    // Fifteen short requests + one long one.
    let mut batch = Batch::new();
    for _ in 0..15 {
        push(&model, &shared, &mut batch, 2);
    }
    push(&model, &shared, &mut batch, 32);
    while batch.active_requests() > 1 {
        batch.tick(|_| {});
    }
    let drained = batch.memory_estimate();

    // Reference: a 1-slot batch with the same long request, equally warm.
    let mut solo = Batch::new();
    push(&model, &shared, &mut solo, 32);
    for _ in 0..8 {
        solo.tick(|_| {});
    }
    let solo_est = solo.memory_estimate();

    assert_eq!(
        drained.shared_bytes, solo_est.shared_bytes,
        "one live slot, one shared predictor copy"
    );
    // 15 finished + 1 live must sit within a small constant of 1 live
    // (2x slack absorbs warm-buffer size jitter between the two runs).
    assert!(
        drained.total() <= 2 * solo_est.total(),
        "drained batch holds {} B, 1-slot batch {} B",
        drained.total(),
        solo_est.total()
    );
    // The batch still serves: the long request runs to completion with its
    // tokens intact.
    let out = batch.run();
    assert_eq!(out.len(), 16);
    assert_eq!(out[15].tokens.len(), 32);
    assert!(out.iter().take(15).all(|o| o.tokens.len() == 2));
}

/// Per-request isolation survives sharing: slots over one predictor keep
/// independent op counters and stats.
#[test]
fn shared_predictor_slots_keep_isolated_counters() {
    let model = test_model();
    let shared: Arc<dyn SparsityPredictor> = Arc::new(SignBitPredictor::from_model(
        &model,
        AlphaSchedule::uniform(1.0),
    ));
    let mut batch = Batch::new();
    for max_new in [2usize, 8] {
        let engine = EngineBuilder::new(&model)
            .predictor_shared(Arc::clone(&shared))
            .build()
            .unwrap();
        batch
            .push(engine, &GenerateRequest::new(&[1, 2]).max_new(max_new))
            .unwrap();
    }
    let out = batch.run();
    assert!(out[1].ops.macs > out[0].ops.macs);
    assert_eq!(out[0].stats.as_ref().unwrap().tokens(), 2);
    assert_eq!(out[1].stats.as_ref().unwrap().tokens(), 8);
}

#[test]
fn boxed_predictor_costs_flow_into_op_counter() {
    let model = test_model();
    // A custom predictor goes in as Box<dyn SparsityPredictor>; its declared
    // prediction cost must surface in the engine's OpCounter.
    #[derive(Debug)]
    struct CountingPredictor {
        layers: usize,
        rows: usize,
    }
    impl SparsityPredictor for CountingPredictor {
        fn predict_into(
            &self,
            _layer: usize,
            _x: &sparseinfer::tensor::Vector,
            _scratch: &mut sparseinfer::predictor::PredictorScratch,
            mask: &mut sparseinfer::predictor::SkipMask,
        ) {
            mask.reset_dense(self.rows);
        }
        fn name(&self) -> &'static str {
            "counting"
        }
        fn n_layers(&self) -> usize {
            self.layers
        }
        fn prediction_cost(&self, _layer: usize) -> sparseinfer::predictor::traits::PredictionCost {
            sparseinfer::predictor::traits::PredictionCost {
                xor_popc: 17,
                macs: 3,
                bytes_loaded: 5,
            }
        }
    }

    let cfg = model.config();
    let boxed: Box<dyn SparsityPredictor> = Box::new(CountingPredictor {
        layers: cfg.n_layers,
        rows: cfg.mlp_dim,
    });
    let mut engine = EngineBuilder::new(&model).predictor(boxed).build().unwrap();
    let gen = generate(engine.as_mut(), &GenerateRequest::new(&[1, 2]).max_new(3)).unwrap();
    assert_eq!(gen.tokens.len(), 3);

    // 1 engine prefill step + 3 decode steps − 1 unstepped final token
    // = 3 engine steps × n_layers predictions × 17 xor_popc each.
    let steps = 3;
    let expected = (steps * cfg.n_layers) as u64;
    assert_eq!(engine.ops().xor_popc, expected * 17);
    assert_eq!(engine.ops().predictor_macs, expected * 3);
}

#[test]
fn signbit_prediction_cost_accounted_through_builder() {
    let model = test_model();
    let mut engine = EngineBuilder::new(&model)
        .signbit(AlphaSchedule::uniform(1.0))
        .build()
        .unwrap();
    let _ = generate(
        engine.as_mut(),
        &GenerateRequest::new(&[1, 2, 3]).max_new(4),
    )
    .unwrap();
    assert!(
        engine.ops().xor_popc > 0,
        "sign-bit cost must be accounted via dyn dispatch"
    );
    assert!(engine.ops().rows_skipped > 0);
}

#[test]
fn builder_rejects_layer_mismatch_with_err() {
    let model = test_model();
    let wrong = sparseinfer::predictor::RandomPredictor::new(0.5, model.config().mlp_dim, 1, 1);
    let result = EngineBuilder::new(&model)
        .predictor(Box::new(wrong))
        .build();
    match result {
        Err(EngineError::LayerCountMismatch {
            model_layers,
            predictor_layers,
        }) => {
            assert_eq!(model_layers, model.config().n_layers);
            assert_eq!(predictor_layers, 1);
        }
        other => panic!("expected LayerCountMismatch, got {other:?}"),
    }
}

#[test]
fn seeded_samplers_are_reproducible_and_seed_sensitive() {
    let model = test_model();
    let mut engine = EngineBuilder::new(&model).build().unwrap();
    let run = |engine: &mut dyn sparseinfer::sparse::Engine, seed: u64| {
        generate(
            engine,
            &GenerateRequest::new(&[2, 3])
                .max_new(10)
                .sampler(Sampler::top_k(16, 1.2, seed)),
        )
        .unwrap()
        .tokens
    };
    let a1 = run(engine.as_mut(), 1);
    let a2 = run(engine.as_mut(), 1);
    assert_eq!(a1, a2, "same seed must replay");
    let mut differs = false;
    for seed in 2..8 {
        if run(engine.as_mut(), seed) != a1 {
            differs = true;
            break;
        }
    }
    assert!(differs, "different seeds should change at least one stream");
}

#[test]
fn default_sampler_from_builder_drives_requests_without_one() {
    let model = test_model();
    // Greedy default: two identical runs.
    let mut greedy = EngineBuilder::new(&model)
        .sampler(Sampler::greedy())
        .build()
        .unwrap();
    let req = GenerateRequest::new(&[4, 5]).max_new(6);
    let g1 = generate(greedy.as_mut(), &req).unwrap().tokens;
    let g2 = generate(greedy.as_mut(), &req).unwrap().tokens;
    assert_eq!(g1, g2);

    // The engine-level default sampler is cloned per request, so a
    // stochastic default also replays identically across requests.
    let mut stochastic = EngineBuilder::new(&model)
        .sampler(Sampler::temperature(1.0, 77))
        .build()
        .unwrap();
    let s1 = generate(stochastic.as_mut(), &req).unwrap().tokens;
    let s2 = generate(stochastic.as_mut(), &req).unwrap().tokens;
    assert_eq!(
        s1, s2,
        "default sampler state must not leak across requests"
    );
}

/// The continuous-batching determinism contract (acceptance criterion):
/// with FIFO admission and fixed seeds, every request's scheduler tokens
/// are bit-identical to solo `generate()` — across engine kinds, across
/// 1/2/4 slot threads, with admission capped so requests genuinely queue
/// and join mid-flight, and with identical streamed event order.
#[test]
fn scheduler_is_token_identical_to_solo_decode_at_1_2_4_threads() {
    let model = test_model();
    let prompts: Vec<Vec<u32>> = vec![
        vec![1, 2, 3],
        vec![7, 8],
        vec![10, 20, 30, 40],
        vec![5],
        vec![9, 9, 9],
        vec![2, 4, 6, 8, 10],
    ];
    let budgets = [6usize, 9, 4, 7, 5, 8];

    let solo: Vec<Vec<u32>> = prompts
        .iter()
        .zip(budgets)
        .enumerate()
        .map(|(i, (p, max_new))| {
            let mut e = engine_for(&model, i);
            generate(
                e.as_mut(),
                &GenerateRequest::new(p).max_new(max_new).stop_at(EOS),
            )
            .expect("non-empty prompt")
            .tokens
        })
        .collect();

    let run_at = |threads: usize| {
        let mut scheduler = Scheduler::new(SchedulerConfig {
            max_slots: 3, // half the requests must wait for retirement
            block_tokens: 4,
            kv_block_budget: usize::MAX,
            ..SchedulerConfig::default()
        })
        .parallel(ParallelOptions::threads(threads));
        for (i, (p, max_new)) in prompts.iter().zip(budgets).enumerate() {
            scheduler
                .submit(
                    engine_for(&model, i),
                    &GenerateRequest::new(p).max_new(max_new).stop_at(EOS),
                )
                .expect("non-empty prompt");
        }
        let mut events = Vec::new();
        let outputs = scheduler.run_streaming(|ev| events.push((ev.request, ev.index, ev.token)));
        (
            outputs.into_iter().map(|o| o.tokens).collect::<Vec<_>>(),
            events,
        )
    };

    let (seq_tokens, seq_events) = run_at(1);
    assert_eq!(seq_tokens, solo, "scheduled == solo at 1 thread");
    for threads in [2usize, 4] {
        let (tokens, events) = run_at(threads);
        assert_eq!(tokens, solo, "scheduled == solo at {threads} threads");
        assert_eq!(events, seq_events, "event order at {threads} threads");
    }
}

/// Satellite regression: a request that stops early must only ever have
/// allocated KV blocks for the tokens it actually produced — lazy paged
/// growth, never a `prompt + max_new` reservation-as-allocation.
#[test]
fn early_stop_allocates_blocks_for_produced_tokens_not_max_new() {
    let model = test_model();
    let block_tokens = 4usize;
    let n_layers = model.config().n_layers;

    // Find the first greedy token, then declare it a stop token: the
    // request ends after sampling one token (zero emitted tokens).
    let first = {
        let mut e = EngineBuilder::new(&model).build().unwrap();
        generate(e.as_mut(), &GenerateRequest::new(&[1, 2]).max_new(1))
            .unwrap()
            .tokens[0]
    };

    let max_new = 256usize;
    let prompt = [1u32, 2];
    let mut scheduler = Scheduler::new(SchedulerConfig {
        max_slots: 1,
        block_tokens,
        kv_block_budget: usize::MAX,
        ..SchedulerConfig::default()
    });
    scheduler
        .submit(
            EngineBuilder::new(&model).build().unwrap(),
            &GenerateRequest::new(&prompt)
                .max_new(max_new)
                .stop_at(first),
        )
        .unwrap();
    let kv = scheduler.kv_pool().clone();
    let outputs = scheduler.run();
    assert_eq!(outputs[0].finish, FinishReason::Stop(first));
    assert!(outputs[0].tokens.is_empty());

    // The pool's high-water mark (blocks created) is proportional to the
    // context actually absorbed — prompt plus at most a couple of decode
    // steps — not to the 256-token budget.
    let produced_ctx = prompt.len() + 2;
    let lazy_bound = n_layers * produced_ctx.div_ceil(block_tokens);
    let eager_blocks = n_layers * (prompt.len() + max_new).div_ceil(block_tokens);
    assert!(
        kv.blocks_created() <= lazy_bound,
        "{} blocks created; lazy growth allows at most {lazy_bound} \
         (eager reservation would have taken {eager_blocks})",
        kv.blocks_created()
    );
    assert_eq!(kv.blocks_in_use(), 0, "all blocks returned at retirement");
}

/// Satellite: scheduler churn. Requests continuously join, cancel and
/// finish across 200+ ticks; KV memory must stay bounded by the live
/// requests (never by cumulative traffic), and at drain every block must
/// be back in the pool.
#[test]
fn churning_scheduler_memory_is_bounded_by_live_tokens_and_drains_clean() {
    let model = test_model();
    let n_layers = model.config().n_layers;
    let block_tokens = 4usize;
    let max_slots = 3usize;
    let prompts: [&[u32]; 4] = [&[1, 2], &[3, 4, 5], &[6], &[7, 8, 9, 10]];
    let budgets = [5usize, 8, 3, 11];
    let shared: Arc<dyn SparsityPredictor> = Arc::new(SignBitPredictor::from_model(
        &model,
        AlphaSchedule::uniform(1.0),
    ));

    let mut scheduler = Scheduler::new(SchedulerConfig {
        max_slots,
        block_tokens,
        kv_block_budget: usize::MAX,
        ..SchedulerConfig::default()
    });

    // Worst-case live context any slot can hold, in blocks — the O(live
    // tokens) ceiling the pool must respect at every tick.
    let per_slot_ceiling = {
        let worst_tokens =
            prompts.iter().map(|p| p.len()).max().unwrap() + budgets.iter().max().unwrap();
        n_layers * worst_tokens.div_ceil(block_tokens)
    };
    let live_ceiling = max_slots * per_slot_ceiling;

    let mut handles = Vec::new();
    let mut submitted = 0usize;
    let mut cancelled = 0usize;
    let mut tokens_streamed = 0usize;
    let mut created_mid_churn = 0usize;
    for tick in 0usize..220 {
        // Join: a new request every other tick.
        if tick.is_multiple_of(2) {
            let i = submitted % prompts.len();
            let engine = if i.is_multiple_of(2) {
                EngineBuilder::new(&model)
                    .predictor_shared(Arc::clone(&shared))
                    .build()
                    .unwrap()
            } else {
                EngineBuilder::new(&model).build().unwrap()
            };
            let handle = scheduler
                .submit(
                    engine,
                    &GenerateRequest::new(prompts[i]).max_new(budgets[i]),
                )
                .unwrap();
            handles.push(handle);
            submitted += 1;
        }
        // Cancel: every 7th tick, cancel the oldest handle still around —
        // sometimes queued, sometimes mid-stream, sometimes already done.
        if tick % 7 == 3 && !handles.is_empty() {
            handles.remove(0).cancel();
            cancelled += 1;
        }
        scheduler.tick(|_| tokens_streamed += 1);

        // Invariants, every tick of the churn:
        let in_use = scheduler.kv_pool().blocks_in_use();
        assert!(
            in_use <= live_ceiling,
            "tick {tick}: {in_use} blocks in use exceeds the live-slot \
             ceiling {live_ceiling}"
        );
        assert!(scheduler.active_slots() <= max_slots);
        if tick == 110 {
            created_mid_churn = scheduler.kv_pool().blocks_created();
        }
    }

    // Stop submitting; drain.
    while scheduler.tick(|_| tokens_streamed += 1) > 0 {}
    let outputs = scheduler.take_finished();
    assert_eq!(outputs.len(), submitted, "every submission resolves");
    assert!(submitted >= 100, "the churn must be substantial");
    assert!(cancelled >= 20);
    assert!(tokens_streamed > 100);

    // No leaks: every block is back in the pool…
    let kv = scheduler.kv_pool();
    assert_eq!(kv.blocks_in_use(), 0, "drain must return every block");
    assert_eq!(kv.blocks_free(), kv.blocks_created());
    assert_eq!(scheduler.reserved_blocks(), 0);
    assert_eq!(
        scheduler.memory_estimate().total(),
        0,
        "a drained scheduler holds no decode memory"
    );
    // …and the pool's total footprint reflects peak concurrency, not the
    // 100+ requests served: a scheduler that retired N requests costs
    // what a fresh one serving the same live set costs.
    assert!(
        kv.blocks_created() <= live_ceiling,
        "{} blocks created vs live ceiling {live_ceiling}: pool capacity \
         must be O(live tokens), not O(requests served)",
        kv.blocks_created()
    );
    // Half the churn happened after tick 110; a leak (or any per-request
    // growth) would show up as continued block creation. A warm pool only
    // recycles.
    assert!(
        kv.blocks_created() <= created_mid_churn + per_slot_ceiling,
        "pool grew from {created_mid_churn} to {} blocks after warm-up: \
         blocks are leaking instead of being recycled",
        kv.blocks_created()
    );
}

/// The prefix-sharing determinism contract (acceptance criterion): with
/// fixed seeds, shared-prefix decode is **token- and event-order
/// bit-identical** to unshared decode at 1/2/4 slot threads. Sharing only
/// removes redundant prefill *work* — cached positions still consume one
/// scheduling step each, so the admission schedule, the event stream and
/// every token match the cold run exactly.
#[test]
fn shared_prefix_decode_is_bit_identical_to_unshared_at_1_2_4_threads() {
    let model = test_model();
    let block_tokens = 4usize;
    // A 13-token shared system prompt; with a unique tail token appended,
    // the densely prefilled region is 13 tokens = 3 full sharable blocks.
    let prefix: Vec<u32> = (0..13).map(|i| (i * 7) % 90 + 3).collect();
    let mut prompts: Vec<Vec<u32>> = (0..4)
        .map(|i| {
            let mut p = prefix.clone();
            p.push(100 + i);
            p
        })
        .collect();
    prompts.push(vec![7, 8, 9]); // unrelated traffic in the same run
    prompts.push(vec![50, 60]);
    let budgets = [5usize, 7, 4, 6, 5, 3];

    let solo: Vec<Vec<u32>> = prompts
        .iter()
        .zip(budgets)
        .enumerate()
        .map(|(i, (p, max_new))| {
            let mut e = engine_for(&model, i);
            generate(e.as_mut(), &GenerateRequest::new(p).max_new(max_new))
                .expect("non-empty prompt")
                .tokens
        })
        .collect();

    let run_at = |threads: usize, prefix_cache: bool| {
        let mut scheduler = Scheduler::new(SchedulerConfig {
            max_slots: 3, // sharers 0..3 start cold; sharer 3 joins warm
            block_tokens,
            kv_block_budget: usize::MAX,
            prefix_cache,
            prefix_retain_blocks: 64,
            ..SchedulerConfig::default()
        })
        .parallel(ParallelOptions::threads(threads));
        for (i, (p, max_new)) in prompts.iter().zip(budgets).enumerate() {
            scheduler
                .submit(
                    engine_for(&model, i),
                    &GenerateRequest::new(p).max_new(max_new),
                )
                .expect("non-empty prompt");
        }
        let mut events = Vec::new();
        let outputs = scheduler.run_streaming(|ev| events.push((ev.request, ev.index, ev.token)));
        let skipped: Vec<usize> = outputs.iter().map(|o| o.prefill_skipped_tokens).collect();
        let tokens: Vec<Vec<u32>> = outputs.into_iter().map(|o| o.tokens).collect();
        (tokens, events, skipped)
    };

    let (cold_tokens, cold_events, cold_skipped) = run_at(1, false);
    assert_eq!(cold_tokens, solo, "cold scheduler == solo decode");
    assert!(cold_skipped.iter().all(|s| *s == 0), "cache off: no hits");

    for threads in [1usize, 2, 4] {
        let (tokens, events, skipped) = run_at(threads, true);
        assert_eq!(tokens, solo, "warm tokens == solo at {threads} threads");
        assert_eq!(
            events, cold_events,
            "warm event order == cold event order at {threads} threads"
        );
        // The fourth sharer is admitted only after one of the first three
        // retires — long after their shared prefill published — so it must
        // attach every sharable full block: 3 blocks × 4 tokens.
        assert!(
            skipped[3] >= 3 * block_tokens,
            "warm sharer skipped {} < {} tokens at {threads} threads",
            skipped[3],
            3 * block_tokens
        );
        assert_eq!(skipped[4], 0, "unrelated prompts never hit");
        assert_eq!(skipped[5], 0);
    }
}

/// Refcount torture (acceptance satellite): many requests attach the same
/// prefix and cancel/finish in a seeded random order; physical blocks stay
/// bounded by shared-prefix + live-tail usage throughout, survive every
/// individual drop, and the pool drains to zero bytes once the last
/// referrer (the scheduler's index) is gone.
#[test]
fn prefix_refcount_torture_frees_blocks_only_at_the_last_referrer() {
    let model = test_model();
    let n_layers = model.config().n_layers;
    let block_tokens = 4usize;
    let max_slots = 3usize;
    let prefix: Vec<u32> = (0..9).map(|i| i * 3 + 1).collect(); // 2 full blocks shared
    let shared_blocks = n_layers * 2;
    let max_new = 6usize;

    let mut scheduler = Scheduler::new(SchedulerConfig {
        max_slots,
        block_tokens,
        kv_block_budget: usize::MAX,
        prefix_cache: true,
        prefix_retain_blocks: 64,
        ..SchedulerConfig::default()
    });
    let kv = scheduler.kv_pool().clone();
    let n_requests = 16usize;
    let mut handles = Vec::new();
    for i in 0..n_requests {
        let mut p = prefix.clone();
        p.push(120 + i as u32);
        handles.push(
            scheduler
                .submit(
                    engine_for(&model, i),
                    &GenerateRequest::new(&p).max_new(max_new),
                )
                .unwrap(),
        );
    }
    // Worst case per live slot: private blocks for its whole context.
    let per_slot = n_layers * (prefix.len() + 1 + max_new).div_ceil(block_tokens);
    let ceiling = shared_blocks + max_slots * per_slot;

    // Seeded pseudo-random cancellation order: every third tick, cancel
    // the "random" oldest-half handle — queued, live or already done.
    let mut seed = 0x5EEDu64;
    let mut tick = 0usize;
    loop {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if tick % 3 == 2 && !handles.is_empty() {
            let i = (seed >> 33) as usize % handles.len();
            handles.swap_remove(i).cancel();
        }
        let unfinished = scheduler.tick(|_| {});
        assert!(
            kv.blocks_in_use() <= ceiling,
            "tick {tick}: {} blocks exceeds shared+live ceiling {ceiling}",
            kv.blocks_in_use()
        );
        tick += 1;
        if unfinished == 0 {
            break;
        }
        assert!(tick < 1024, "torture must drain");
    }
    let outputs = scheduler.take_finished();
    assert_eq!(outputs.len(), n_requests, "every submission resolves");
    let stats = scheduler.prefix_stats();
    assert!(stats.attached_requests > 0, "sharing must actually happen");
    assert_eq!(
        kv.blocks_in_use(),
        stats.retained_blocks,
        "after drain only index retention survives"
    );
    assert!(stats.retained_blocks >= shared_blocks);
    // Dropping the scheduler drops the index — the last referrer.
    drop(scheduler);
    assert_eq!(kv.blocks_in_use(), 0, "pool drains to zero blocks");
    assert_eq!(kv.in_use_bytes(), 0, "pool drains to zero bytes");
    assert_eq!(kv.blocks_free(), kv.blocks_created());
}

/// Satellite fix regression: `Scheduler::memory_estimate()` counts shared
/// prefix blocks once (physical pool bytes), not once per session — N
/// warm sharers mid-decode cost strictly less KV than N cold copies.
#[test]
fn shared_prefix_blocks_are_counted_once_not_per_session() {
    let model = test_model();
    let n_layers = model.config().n_layers;
    let block_tokens = 4usize;
    let prefix: Vec<u32> = (0..13).map(|i| i * 2 + 5).collect(); // 3 full blocks
    let sharers = 3usize;

    // Drive both variants to the same mid-decode tick; the only difference
    // is the prefix cache, so the estimate gap is exactly the deduped KV.
    let run_to_mid_decode = |prefix_cache: bool| {
        let mut scheduler = Scheduler::new(SchedulerConfig {
            max_slots: sharers + 1,
            block_tokens,
            kv_block_budget: usize::MAX,
            prefix_cache,
            prefix_retain_blocks: 64,
            ..SchedulerConfig::default()
        });
        // Warm-up request publishes the prefix (when the cache is on).
        let mut warm = prefix.clone();
        warm.push(90);
        scheduler
            .submit(
                EngineBuilder::new(&model).build().unwrap(),
                &GenerateRequest::new(&warm).max_new(1),
            )
            .unwrap();
        while scheduler.tick(|_| {}) > 0 {}
        for i in 0..sharers {
            let mut p = prefix.clone();
            p.push(100 + i as u32);
            scheduler
                .submit(
                    EngineBuilder::new(&model).build().unwrap(),
                    &GenerateRequest::new(&p).max_new(8),
                )
                .unwrap();
        }
        // Past prefill, a few decode tokens in, nobody finished.
        for _ in 0..prefix.len() + 4 {
            scheduler.tick(|_| {});
        }
        assert_eq!(scheduler.active_slots(), sharers);
        (
            scheduler.kv_pool().blocks_in_use(),
            scheduler.memory_estimate(),
        )
    };

    let (shared_blocks, shared_est) = run_to_mid_decode(true);
    let (cold_blocks, cold_est) = run_to_mid_decode(false);
    // Cold: every sharer stores the 3 prefix blocks per layer privately.
    // Warm: one physical copy serves all three.
    let dedup = (sharers - 1) * n_layers * 3;
    assert!(
        shared_blocks + dedup <= cold_blocks + n_layers * 3,
        "warm {shared_blocks} blocks vs cold {cold_blocks}: sharing must \
         deduplicate the prefix (expected ≥ {dedup} blocks saved, modulo \
         one retained warm-up copy)"
    );
    assert!(
        shared_est.total() < cold_est.total(),
        "estimate must reflect physical sharing: warm {} B vs cold {} B",
        shared_est.total(),
        cold_est.total()
    );
}

#[test]
fn finish_reasons_distinguish_budget_from_stop() {
    let model = test_model();
    let mut engine = EngineBuilder::new(&model).build().unwrap();
    let budget = generate(engine.as_mut(), &GenerateRequest::new(&[1, 2]).max_new(3)).unwrap();
    assert_eq!(budget.finish, FinishReason::MaxTokens);

    // Declare the first greedy token a stop token; the rerun stops on it.
    let first = budget.tokens[0];
    let stopped = generate(
        engine.as_mut(),
        &GenerateRequest::new(&[1, 2]).max_new(3).stop_at(first),
    )
    .unwrap();
    assert_eq!(stopped.finish, FinishReason::Stop(first));
    assert!(stopped.tokens.is_empty());
}

/// Satellite: the preemption storm (acceptance criterion). 220 ticks of
/// mixed-priority traffic over a budget tight enough that High arrivals
/// must evict Batch/Normal slots, with seeded cancels landing on queued,
/// live, preempted and finished requests alike. Run once with an
/// unlimited swap budget (every preemption swaps) and once with none
/// (every preemption recomputes), each at 1/2/4 slot threads: every
/// request's tokens must be bit-identical to its solo run (a prefix of
/// it, when cancelled mid-flight), the whole schedule must be identical
/// across thread counts, blocks in use must respect the budget every
/// tick, and the drain must reach 0 blocks / 0 cold bytes.
#[test]
fn preemption_storm_is_bit_identical_at_any_thread_count_and_drains_clean() {
    let model = test_model();
    let block_tokens = 4usize;
    // Worst cases (3 layers): 6, 9, 3, 12 blocks — a budget of 18 packs
    // two to three requests and forces eviction when a High one arrives.
    let kv_block_budget = 18usize;
    let prompts: [&[u32]; 4] = [&[1, 2], &[3, 4, 5], &[6], &[7, 8, 9, 10]];
    let budgets = [5usize, 8, 3, 11];
    let priority_of = |i: usize| match i % 5 {
        0 | 3 => Priority::Batch,
        1 | 4 => Priority::Normal,
        _ => Priority::High,
    };
    let request_of = |i: usize| {
        GenerateRequest::new(prompts[i % prompts.len()])
            .max_new(budgets[i % budgets.len()])
            .priority(priority_of(i))
    };

    // Solo reference per request index (priority never changes tokens).
    let solo: Vec<Vec<u32>> = (0..prompts.len())
        .map(|i| {
            let mut e = engine_for(&model, i);
            generate(e.as_mut(), &request_of(i)).unwrap().tokens
        })
        .collect();

    let run_storm = |threads: usize, swap_budget_bytes: u64| {
        let mut scheduler = Scheduler::new(SchedulerConfig {
            max_slots: 3,
            block_tokens,
            kv_block_budget,
            prefix_cache: true,
            prefix_retain_blocks: 6,
            preemption: true,
            max_preemptions_per_request: 4,
            swap_budget_bytes,
            ..SchedulerConfig::default()
        })
        .parallel(ParallelOptions::threads(threads));
        let mut handles = Vec::new();
        let mut submitted = 0usize;
        let mut cancelled = 0usize;
        let mut peak_cold_bytes = 0u64;
        // Seeded LCG: the cancel schedule is fixed across runs.
        let mut rng: u64 = 0x5eed_cafe;
        for tick in 0usize..220 {
            if tick % 2 == 0 {
                let handle = scheduler
                    .submit(engine_for(&model, submitted), &request_of(submitted))
                    .unwrap();
                handles.push(handle);
                submitted += 1;
            }
            if tick % 5 == 4 && !handles.is_empty() {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pick = (rng >> 33) as usize % handles.len();
                handles.remove(pick).cancel();
                cancelled += 1;
            }
            scheduler.tick(|_| {});
            let in_use = scheduler.kv_pool().blocks_in_use();
            assert!(
                in_use <= kv_block_budget,
                "tick {tick}: {in_use} blocks in use exceeds the budget {kv_block_budget}"
            );
            peak_cold_bytes = peak_cold_bytes.max(scheduler.preemption_stats().swapped_bytes);
        }
        while scheduler.tick(|_| {}) > 0 {}
        let stats = scheduler.preemption_stats();
        assert!(
            stats.preemptions >= 3,
            "the storm must actually preempt (got {})",
            stats.preemptions
        );
        if swap_budget_bytes == u64::MAX {
            assert_eq!(
                stats.recomputed, 0,
                "unlimited swap budget never recomputes"
            );
            assert!(stats.swapped_out >= 3);
            assert!(
                peak_cold_bytes > 0,
                "cold buffers must be visible mid-storm"
            );
        } else {
            assert_eq!(stats.swapped_out, 0, "zero swap budget never swaps");
            assert!(stats.recomputed >= 3);
            assert_eq!(peak_cold_bytes, 0);
        }
        // Full drain: every block back, no cold bytes, no decode memory.
        assert_eq!(
            scheduler.kv_pool().blocks_in_use(),
            0,
            "pool drains to zero"
        );
        assert_eq!(scheduler.reserved_blocks(), 0);
        assert_eq!(scheduler.preemption_stats().swapped_bytes, 0);
        let memory = scheduler.memory_estimate();
        assert_eq!(memory.swapped_bytes, 0, "no cold bytes after drain");
        assert_eq!(
            memory.total(),
            0,
            "a drained scheduler holds no decode memory"
        );
        let mut outputs = scheduler.take_finished();
        outputs.sort_by_key(|o| o.id);
        assert_eq!(outputs.len(), submitted, "every submission resolves");
        assert!(cancelled >= 30, "the cancel churn must be substantial");
        // Per-request bit-identity against the uninterrupted solo run —
        // preempted-and-resumed (swap or recompute) included.
        for out in &outputs {
            let expected = &solo[out.id % solo.len()];
            match out.finish {
                FinishReason::Cancelled => assert_eq!(
                    out.tokens[..],
                    expected[..out.tokens.len()],
                    "request {}: cancelled tokens must be a solo prefix",
                    out.id
                ),
                _ => assert_eq!(
                    &out.tokens, expected,
                    "request {} (preempted {} times) diverged from solo",
                    out.id, out.preemptions
                ),
            }
        }
        outputs
            .into_iter()
            .map(|o| {
                (
                    o.id,
                    o.tokens,
                    format!("{:?}", o.finish),
                    o.preemptions,
                    o.swapped_blocks,
                )
            })
            .collect::<Vec<_>>()
    };

    for swap_budget_bytes in [u64::MAX, 0] {
        let single = run_storm(1, swap_budget_bytes);
        for threads in [2, 4] {
            assert_eq!(
                run_storm(threads, swap_budget_bytes),
                single,
                "the storm schedule must be bit-identical at {threads} slot threads"
            );
        }
    }
}
