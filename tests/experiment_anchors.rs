//! Smoke tests pinning every paper anchor the analytic machinery must hit.
//! These are the "does the reproduction still reproduce?" tests.

use sparseinfer::gpu_sim::kernel::kernels;
use sparseinfer::gpu_sim::latency::{
    dense_token_latency, powerinfer_token_latency, sparseinfer_token_latency, MlpStepSparsity,
    SparseVariant, DEFAULT_CTX,
};
use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::ModelConfig;
use sparseinfer::predictor::memory::{dejavu_bytes, signbit_bytes, to_mib};
use sparseinfer::sparse::ops::table1;

#[test]
fn table1_reproduces_exactly() {
    let cfg = ModelConfig::prosparse_13b_paper();
    let rows = table1(&cfg, 0.92, 1024);
    assert_eq!(rows[0].prediction_ops, 0);
    assert_eq!(rows[0].mlp_ops, 212_336_640); // 2.123e8
    assert_eq!(rows[1].prediction_ops, 19_398_656); // 1.940e7
    assert_eq!(rows[2].prediction_ops, 2_211_840); // 2.211e6
    assert_eq!(rows[1].mlp_ops, rows[2].mlp_ops);
}

#[test]
fn memory_section_reproduces_exactly() {
    let cfg = ModelConfig::prosparse_13b_paper();
    assert!((to_mib(signbit_bytes(&cfg)) - 337.5).abs() < 1e-9);
    assert!((to_mib(dejavu_bytes(&cfg, 1024)) - 1480.0).abs() < 1.0);
}

#[test]
fn predictor_latency_anchors_hold() {
    let spec = GpuSpec::jetson_orin_agx_64gb();
    let cfg = ModelConfig::prosparse_13b_paper();
    let si = kernels::signbit_predictor(&cfg).latency_us(&spec);
    let dv = kernels::dejavu_predictor(&cfg, 1024).latency_us(&spec);
    assert!(
        (45.0..95.0).contains(&si),
        "predictor {si:.1} us (paper ~70)"
    );
    assert!(
        (2.5..5.0).contains(&(dv / si)),
        "ratio {:.2} (paper 3.66)",
        dv / si
    );
}

#[test]
fn fig4_headline_ordering_holds() {
    let spec = GpuSpec::jetson_orin_agx_64gb();
    for cfg in [
        ModelConfig::prosparse_13b_paper(),
        ModelConfig::prosparse_7b_paper(),
    ] {
        let n = cfg.n_layers;
        let dense = dense_token_latency(&spec, &cfg).total_us();
        let si = sparseinfer_token_latency(
            &spec,
            &cfg,
            &vec![MlpStepSparsity::with_actual(0.90, 0.93); n],
            SparseVariant::fused(),
            DEFAULT_CTX,
        )
        .total_us();
        let pi = powerinfer_token_latency(
            &spec,
            &cfg,
            &vec![MlpStepSparsity::uniform(0.74); n],
            1024,
            DEFAULT_CTX,
        )
        .total_us();
        // Paper: SparseInfer 1.79×/1.74× over dense, 1.27×/1.30× over PowerInfer.
        let speedup = dense / si;
        assert!(
            (1.4..2.6).contains(&speedup),
            "{}: speedup {speedup:.2}",
            cfg.name
        );
        assert!(si < pi, "{}: SparseInfer must beat PowerInfer", cfg.name);
        assert!(pi < dense, "{}: PowerInfer must beat dense", cfg.name);
    }
}

#[test]
fn decode_profile_is_mlp_dominated() {
    // Paper §III: attention 38% / MLP 62% during dense decode.
    let spec = GpuSpec::jetson_orin_agx_64gb();
    let t = dense_token_latency(&spec, &ModelConfig::prosparse_13b_paper());
    assert!(
        (0.5..0.75).contains(&t.mlp_share()),
        "MLP share {:.2}",
        t.mlp_share()
    );
}

#[test]
fn speedup_decreases_with_alpha_conservativeness() {
    // Fig. 4: larger alpha -> lower sparsity -> smaller speedup.
    let spec = GpuSpec::jetson_orin_agx_64gb();
    let cfg = ModelConfig::prosparse_13b_paper();
    let mut last = 0.0f64;
    for sparsity in [0.92, 0.90, 0.88, 0.86] {
        let t = sparseinfer_token_latency(
            &spec,
            &cfg,
            &vec![MlpStepSparsity::uniform(sparsity); 40],
            SparseVariant::fused(),
            DEFAULT_CTX,
        )
        .total_us();
        assert!(
            t > last,
            "latency must grow as sparsity falls ({t} vs {last})"
        );
        last = t;
    }
}
