//! Cross-crate integration tests: the full SparseInfer pipeline from weight
//! generation through prediction, sparse execution and evaluation, driven
//! through the unified `Engine` API.

use sparseinfer::eval::harness::{
    evaluate_against_gold, evaluate_engine, gold_continuations, teacher_forced_engine_matches,
};
use sparseinfer::eval::TaskSuite;
use sparseinfer::model::{generator::WeightGenerator, Model, ModelConfig};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor};
use sparseinfer::sparse::engine::{Engine, EngineBuilder, EngineOptions};
use sparseinfer::sparse::request::{generate, GenerateRequest};
use sparseinfer::tensor::Prng;

const EOS: u32 = sparseinfer::model::tokenizer::EOS;

fn test_model() -> Model {
    let mut cfg = ModelConfig::tiny();
    cfg.hidden_dim = 96;
    cfg.mlp_dim = 256;
    cfg.n_heads = 3;
    cfg.n_layers = 4;
    cfg.vocab_size = 300;
    WeightGenerator::new(&cfg, 1234).build()
}

fn run_greedy(engine: &mut dyn Engine, prompt: &[u32], max_new: usize) -> Vec<u32> {
    generate(
        engine,
        &GenerateRequest::new(prompt).max_new(max_new).stop_at(EOS),
    )
    .expect("non-empty prompt")
    .tokens
}

#[test]
fn oracle_masked_engine_is_bit_identical_to_dense() {
    let model = test_model();
    let mut dense = EngineBuilder::new(&model).build().unwrap();
    let mut sparse = EngineBuilder::new(&model).oracle().build().unwrap();

    let prompt = [1u32, 5, 9];
    assert_eq!(
        run_greedy(sparse.as_mut(), &prompt, 12),
        run_greedy(dense.as_mut(), &prompt, 12)
    );
    // And it skipped most of the rows while doing so.
    assert!(sparse.ops().skip_fraction() > 0.5);
}

#[test]
fn signbit_engine_tracks_dense_under_teacher_forcing() {
    let model = test_model();
    let suite = TaskSuite::gsm8k_syn(2, 5);
    let gold = gold_continuations(&model, &suite, 8);

    let mut engine = EngineBuilder::new(&model)
        .signbit(AlphaSchedule::uniform(1.0))
        .build()
        .unwrap();

    let mut matches = 0usize;
    let mut total = 0usize;
    for (task, gold_tokens) in suite.tasks.iter().zip(&gold) {
        let m = teacher_forced_engine_matches(engine.as_mut(), &task.tokens, gold_tokens);
        matches += m.iter().filter(|x| **x).count();
        total += m.len();
    }
    let rate = matches as f64 / total as f64;
    assert!(rate > 0.5, "teacher-forced match rate {rate}");
}

#[test]
fn alpha_increases_match_rate_and_decreases_sparsity() {
    let model = test_model();
    let suite = TaskSuite::gsm8k_syn(2, 6);
    let gold = gold_continuations(&model, &suite, 8);

    let mut sparsities = Vec::new();
    let mut rates = Vec::new();
    for alpha in [1.0, 1.5, 2.5] {
        let mut engine = EngineBuilder::new(&model)
            .signbit(AlphaSchedule::uniform(alpha))
            .build()
            .unwrap();
        let mut matches = 0usize;
        let mut total = 0usize;
        for (task, gold_tokens) in suite.tasks.iter().zip(&gold) {
            let m = teacher_forced_engine_matches(engine.as_mut(), &task.tokens, gold_tokens);
            matches += m.iter().filter(|x| **x).count();
            total += m.len();
        }
        rates.push(matches as f64 / total as f64);
        let p = engine.stats().expect("sparse stats").mean_predicted();
        sparsities.push(p.iter().sum::<f64>() / p.len() as f64);
    }
    // Higher alpha -> strictly less predicted sparsity.
    assert!(
        sparsities[0] > sparsities[1] && sparsities[1] > sparsities[2],
        "{sparsities:?}"
    );
    // And at least as much agreement with dense at the conservative end.
    assert!(rates[2] >= rates[0], "{rates:?}");
}

#[test]
fn free_running_random_skip_destroys_output_but_oracle_does_not() {
    let model = test_model();
    let suite = TaskSuite::bbh_syn(2, 7);
    let gold = gold_continuations(&model, &suite, 8);

    let mut random_engine = EngineBuilder::new(&model).random(0.9, 9).build().unwrap();
    let random_report = evaluate_engine(random_engine.as_mut(), &suite, &gold, 8, EOS);

    let mut oracle_engine = EngineBuilder::new(&model).oracle().build().unwrap();
    let oracle_report = evaluate_engine(oracle_engine.as_mut(), &suite, &gold, 8, EOS);

    assert_eq!(oracle_report.exact_rate(), 1.0);
    assert!(random_report.mean_overlap() < oracle_report.mean_overlap());
}

#[test]
fn actual_sparsity_and_fusion_do_not_change_decode_output() {
    let model = test_model();
    let prompt = [2u32, 4, 8];
    let mut outputs = Vec::new();
    for options in [
        EngineOptions::base(),
        EngineOptions::with_kernel_fusion(),
        EngineOptions::with_actual_sparsity(),
        EngineOptions::sparseinfer(),
    ] {
        let mut engine = EngineBuilder::new(&model)
            .signbit(AlphaSchedule::uniform(1.0))
            .options(options)
            .build()
            .unwrap();
        outputs.push(run_greedy(engine.as_mut(), &prompt, 10));
    }
    // +KF and +AS are execution optimizations, not semantic changes: all
    // four variants must decode the same tokens.
    assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
}

#[test]
fn actual_sparsity_strictly_reduces_work() {
    let model = test_model();
    let prompt = [3u32, 6, 9];
    let run = |options| {
        let mut engine = EngineBuilder::new(&model)
            .signbit(AlphaSchedule::uniform(1.3))
            .options(options)
            .build()
            .unwrap();
        let _ = run_greedy(engine.as_mut(), &prompt, 8);
        engine.ops().macs
    };
    let without = run(EngineOptions::base());
    let with = run(EngineOptions::with_actual_sparsity());
    assert!(with < without, "with AS {with} vs without {without}");
}

#[test]
fn engine_op_accounting_matches_analytic_dense_count() {
    let model = test_model();
    let cfg = model.config();
    let mut dense = EngineBuilder::new(&model).build().unwrap();
    let mut session = model.start_session();
    let _ = dense.step(1, &mut session);

    // One token, context length 1: per layer 3dk (MLP) + 4d^2 + 2*1*d (attn).
    let d = cfg.hidden_dim as u64;
    let k = cfg.mlp_dim as u64;
    let expected = cfg.n_layers as u64 * (3 * d * k + 4 * d * d + 2 * d);
    assert_eq!(dense.ops().macs, expected);
}

#[test]
fn predictor_memory_is_a_tiny_fraction_of_model_memory() {
    let model = test_model();
    let cfg = model.config();
    let predictor = SignBitPredictor::from_model(&model, AlphaSchedule::default());
    // Packed signs are 1/32 of an f32 weight per element, gate matrix only.
    let gate_f32_bytes = cfg.n_layers * cfg.mlp_dim * cfg.hidden_dim * 4;
    assert_eq!(predictor.memory_bytes() * 32, gate_f32_bytes);
}

#[test]
fn generation_is_reproducible_across_engine_instances() {
    let model = test_model();
    let mut rng = Prng::seed(0);
    let prompt: Vec<u32> = (0..4).map(|_| rng.below(250) as u32).collect();
    let make = || {
        let mut e = EngineBuilder::new(&model)
            .signbit(AlphaSchedule::uniform(1.02))
            .build()
            .unwrap();
        run_greedy(e.as_mut(), &prompt, 10)
    };
    assert_eq!(make(), make());
}

#[test]
fn legacy_closure_harness_agrees_with_engine_harness() {
    let model = test_model();
    let suite = TaskSuite::gsm8k_syn(2, 8);
    let gold = gold_continuations(&model, &suite, 6);

    let mut engine = EngineBuilder::new(&model).oracle().build().unwrap();
    let via_engine = evaluate_engine(engine.as_mut(), &suite, &gold, 6, EOS);
    let via_closure = evaluate_against_gold(&suite, &gold, |prompt| {
        model.generate_greedy(prompt, 6, EOS)
    });
    assert_eq!(via_engine.exact_rate(), via_closure.exact_rate());
}
