//! Allocation-count guard: steady-state decode performs **zero** heap
//! allocations.
//!
//! A counting global allocator wraps `System`; after warming an engine up
//! (one step populates the workspace pool, the predictor scratch, the mask
//! buffers and the logits vector, while the session's KV capacity is
//! reserved up front), every further decode step must allocate nothing.
//! This is the enforceable form of the workspace-reuse tentpole — a
//! regression that re-introduces a per-token `Vec::with_capacity` anywhere
//! on the hot path fails this test immediately.
//!
//! The guarantee covers `threads > 1` too: parked-worker dispatch deposits
//! stack-allocated chunk descriptors into preallocated mailboxes, so
//! fanning a decode step across workers allocates exactly as much as
//! running it inline — nothing. The counting allocator is global, so
//! worker-thread allocations would be caught just like caller ones.
//!
//! (This integration-test binary and the tensor pool internals are the only
//! places in the workspace that use `unsafe`: implementing `GlobalAlloc`
//! requires it here, and feeding borrowed chunks to persistent workers
//! requires it there. Every other library module rejects `unsafe`.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sparseinfer::model::{generator::WeightGenerator, Model, ModelConfig};
use sparseinfer::predictor::AlphaSchedule;
use sparseinfer::sparse::engine::{Engine, EngineBuilder, WeightFormat};
use sparseinfer::tensor::{ParallelOptions, Vector};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation verbatim to `System`; the counter is a
// relaxed atomic side effect with no influence on allocation behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn test_model() -> Model {
    let mut cfg = ModelConfig::tiny();
    cfg.hidden_dim = 64;
    cfg.mlp_dim = 160;
    cfg.n_heads = 2;
    cfg.n_layers = 3;
    cfg.vocab_size = 300;
    WeightGenerator::new(&cfg, 7).build()
}

/// Decodes `steps` tokens through `engine` on a capacity-reserved session
/// and returns the number of heap allocations the *steady-state* steps
/// performed (everything after the warm-up steps).
fn steady_state_allocations(engine: &mut dyn Engine, warmup: usize, steps: usize) -> u64 {
    let model = engine.model();
    let mut session = model.start_session_with_capacity(warmup + steps + 1);
    let mut logits = Vector::zeros(0);
    for i in 0..warmup {
        engine.step_into((i % 7) as u32 + 1, &mut session, &mut logits);
    }
    let before = allocations();
    for i in 0..steps {
        engine.step_into((i % 5) as u32 + 1, &mut session, &mut logits);
    }
    allocations() - before
}

#[test]
fn dense_steady_state_decode_is_allocation_free() {
    let model = test_model();
    let mut engine = EngineBuilder::new(&model).build().unwrap();
    let allocs = steady_state_allocations(engine.as_mut(), 4, 16);
    assert_eq!(allocs, 0, "dense decode allocated {allocs} times");
}

#[test]
fn signbit_steady_state_decode_is_allocation_free() {
    let model = test_model();
    let mut engine = EngineBuilder::new(&model)
        .signbit(AlphaSchedule::uniform(1.0))
        .build()
        .unwrap();
    let allocs = steady_state_allocations(engine.as_mut(), 4, 16);
    assert_eq!(allocs, 0, "signbit decode allocated {allocs} times");
}

#[test]
fn oracle_and_random_steady_state_decode_are_allocation_free() {
    let model = test_model();
    for (name, mut engine) in [
        (
            "oracle",
            EngineBuilder::new(&model).oracle().build().unwrap(),
        ),
        (
            "random",
            EngineBuilder::new(&model).random(0.5, 3).build().unwrap(),
        ),
    ] {
        let allocs = steady_state_allocations(engine.as_mut(), 4, 16);
        assert_eq!(allocs, 0, "{name} decode allocated {allocs} times");
    }
}

#[test]
fn int8_steady_state_decode_is_allocation_free() {
    // The quantized hot path must hold the same bar as f32: the fused
    // block-dequant kernel expands each 32-column block into a stack
    // buffer (never a heap row), and the quantized MLP reuses the same
    // workspace scratch as the f32 route.
    let model = test_model();
    for (name, mut engine) in [
        (
            "dense+int8",
            EngineBuilder::new(&model)
                .weight_format(WeightFormat::Int8)
                .build()
                .unwrap(),
        ),
        (
            "signbit+int8",
            EngineBuilder::new(&model)
                .signbit(AlphaSchedule::uniform(1.0))
                .weight_format(WeightFormat::Int8)
                .build()
                .unwrap(),
        ),
    ] {
        let allocs = steady_state_allocations(engine.as_mut(), 4, 16);
        assert_eq!(allocs, 0, "{name} decode allocated {allocs} times");
    }
}

#[test]
fn parallel_int8_steady_state_decode_is_allocation_free() {
    let model = test_model();
    for threads in [2usize, 4] {
        let mut engine = EngineBuilder::new(&model)
            .signbit(AlphaSchedule::uniform(1.0))
            .weight_format(WeightFormat::Int8)
            .parallel(ParallelOptions::threads(threads))
            .build()
            .unwrap();
        let allocs = steady_state_allocations(engine.as_mut(), 4, 16);
        assert_eq!(
            allocs, 0,
            "int8 decode at {threads} threads allocated {allocs} times"
        );
    }
}

#[test]
fn parallel_steady_state_decode_is_allocation_free() {
    // The parked-worker pool must not charge the hot path for dispatch:
    // chunk descriptors live on the caller's stack and mailboxes are
    // preallocated at pool construction.
    let model = test_model();
    for threads in [2usize, 4] {
        for (name, mut engine) in [
            (
                "dense",
                EngineBuilder::new(&model)
                    .parallel(ParallelOptions::threads(threads))
                    .build()
                    .unwrap(),
            ),
            (
                "signbit",
                EngineBuilder::new(&model)
                    .signbit(AlphaSchedule::uniform(1.0))
                    .parallel(ParallelOptions::threads(threads))
                    .build()
                    .unwrap(),
            ),
        ] {
            let allocs = steady_state_allocations(engine.as_mut(), 4, 16);
            assert_eq!(
                allocs, 0,
                "{name} decode at {threads} threads allocated {allocs} times"
            );
        }
    }
}

#[test]
fn warmup_does_allocate_proving_the_counter_works() {
    // Sanity check on the instrument itself: the *first* step must
    // allocate (workspace pool, scratch, masks are built lazily).
    let model = test_model();
    let mut engine = EngineBuilder::new(&model)
        .signbit(AlphaSchedule::uniform(1.0))
        .build()
        .unwrap();
    let mut session = model.start_session_with_capacity(8);
    let mut logits = Vector::zeros(0);
    let before = allocations();
    engine.step_into(1, &mut session, &mut logits);
    assert!(
        allocations() > before,
        "cold-start step must populate buffers (counter must tick)"
    );
}
