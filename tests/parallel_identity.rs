//! Bit-identical-across-configurations suite.
//!
//! The tentpole property of the hot-path rework: changing *how* the
//! workspace executes — thread count (1/2/4), batch-level slot parallelism,
//! workspace vs allocating wrappers — never changes *what* it computes.
//! Every engine kind (dense, signbit, dejavu, oracle, random) must decode
//! token-identically under every configuration, because each output element
//! has a single writer and every reduction runs in one fixed order.

use std::sync::Arc;

use sparseinfer::model::{generator::WeightGenerator, Model, ModelConfig};
use sparseinfer::predictor::{
    AlphaSchedule, DejaVuPredictor, SparsityPredictor, TrainConfig, Trainer,
};
use sparseinfer::sparse::batch::Batch;
use sparseinfer::sparse::engine::{Engine, EngineBuilder};
use sparseinfer::sparse::request::{generate, GenerateRequest};
use sparseinfer::tensor::ParallelOptions;

const EOS: u32 = sparseinfer::model::tokenizer::EOS;

fn test_model() -> Model {
    let mut cfg = ModelConfig::tiny();
    cfg.hidden_dim = 64;
    cfg.mlp_dim = 160;
    cfg.n_heads = 2;
    cfg.n_layers = 3;
    cfg.vocab_size = 300;
    WeightGenerator::new(&cfg, 4242).build()
}

fn trained_dejavu(model: &Model) -> DejaVuPredictor {
    let trace = sparseinfer::model::MlpTrace::capture(model, &(1..12).collect::<Vec<u32>>(), 0);
    Trainer::new(TrainConfig {
        rank: 8,
        epochs: 3,
        ..TrainConfig::default()
    })
    .train(model, &trace)
}

/// Every engine kind of the workspace, built at a given thread count.
fn engine_kinds<'m>(
    model: &'m Model,
    dejavu: &DejaVuPredictor,
    threads: usize,
) -> Vec<(&'static str, Box<dyn Engine + 'm>)> {
    let parallel = ParallelOptions::threads(threads);
    vec![
        (
            "dense",
            EngineBuilder::new(model)
                .parallel(parallel)
                .build()
                .unwrap(),
        ),
        (
            "signbit",
            EngineBuilder::new(model)
                .signbit(AlphaSchedule::uniform(1.0))
                .parallel(parallel)
                .build()
                .unwrap(),
        ),
        (
            "dejavu",
            EngineBuilder::new(model)
                .dejavu(dejavu.clone())
                .parallel(parallel)
                .build()
                .unwrap(),
        ),
        (
            "oracle",
            EngineBuilder::new(model)
                .oracle()
                .parallel(parallel)
                .build()
                .unwrap(),
        ),
        (
            "random",
            EngineBuilder::new(model)
                .random(0.5, 9)
                .parallel(parallel)
                .build()
                .unwrap(),
        ),
    ]
}

#[test]
fn every_engine_kind_is_token_identical_across_thread_counts() {
    let model = test_model();
    let dejavu = trained_dejavu(&model);
    let prompt = [1u32, 5, 9];
    let req = GenerateRequest::new(&prompt).max_new(8).stop_at(EOS);

    let reference: Vec<(&str, Vec<u32>)> = engine_kinds(&model, &dejavu, 1)
        .into_iter()
        .map(|(name, mut e)| (name, generate(e.as_mut(), &req).unwrap().tokens))
        .collect();

    for threads in [2, 4] {
        for ((name, mut engine), (ref_name, expected)) in engine_kinds(&model, &dejavu, threads)
            .into_iter()
            .zip(&reference)
        {
            assert_eq!(name, *ref_name);
            let tokens = generate(engine.as_mut(), &req).unwrap().tokens;
            assert_eq!(
                &tokens, expected,
                "{name} engine diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_batch_is_token_identical_to_sequential_batch() {
    let model = test_model();
    let dejavu = trained_dejavu(&model);
    let prompts: Vec<Vec<u32>> = vec![
        vec![1, 2, 3],
        vec![7, 8],
        vec![10, 20, 30, 40],
        vec![5],
        vec![9, 9, 9],
    ];

    let run_batch = |slot_threads: usize| {
        let mut batch = Batch::new().parallel(ParallelOptions::threads(slot_threads));
        for (i, (_, engine)) in engine_kinds(&model, &dejavu, 1).into_iter().enumerate() {
            batch
                .push(
                    engine,
                    &GenerateRequest::new(&prompts[i]).max_new(6).stop_at(EOS),
                )
                .unwrap();
        }
        let mut events = Vec::new();
        let outputs = batch.run_streaming(|ev| events.push((ev.request, ev.index, ev.token)));
        (
            outputs.into_iter().map(|o| o.tokens).collect::<Vec<_>>(),
            events,
        )
    };

    let (seq_tokens, seq_events) = run_batch(1);
    for threads in [2, 4] {
        let (par_tokens, par_events) = run_batch(threads);
        assert_eq!(par_tokens, seq_tokens, "tokens @ {threads} slot threads");
        assert_eq!(
            par_events, seq_events,
            "streaming order @ {threads} slot threads"
        );
    }
}

#[test]
fn kernel_and_slot_parallelism_compose() {
    // Kernel threads inside each engine, slot threads across the batch:
    // still bit-identical to fully sequential decode.
    let model = test_model();
    let prompt = [2u32, 4, 6];
    let req = GenerateRequest::new(&prompt).max_new(5).stop_at(EOS);

    let solo = {
        let mut e = EngineBuilder::new(&model)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap();
        generate(e.as_mut(), &req).unwrap().tokens
    };

    let shared: Arc<dyn SparsityPredictor> = Arc::new(
        sparseinfer::predictor::SignBitPredictor::from_model(&model, AlphaSchedule::uniform(1.0)),
    );
    let mut batch = Batch::new().parallel(ParallelOptions::threads(2));
    for _ in 0..3 {
        let engine = EngineBuilder::new(&model)
            .predictor_shared(Arc::clone(&shared))
            .parallel(ParallelOptions::threads(2))
            .build()
            .unwrap();
        batch.push(engine, &req).unwrap();
    }
    for output in batch.run() {
        assert_eq!(output.tokens, solo, "request {}", output.id);
    }
}
