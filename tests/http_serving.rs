//! Workspace-level end-to-end test of the HTTP serving frontend: real
//! sockets, concurrent clients, sparse engines, and the determinism
//! contract against direct library runs.
//!
//! The serve crate's own integration tests cover protocol edges with the
//! dense engine; this suite closes the loop at the workspace level — the
//! engine behind the server is the paper's sign-bit sparse configuration,
//! and every token that crosses the network must equal the token the
//! library produces for the same seeded request.

use std::time::{Duration, Instant};

use sparseinfer::json::Json;
use sparseinfer::model::{generator::WeightGenerator, Model, ModelConfig, Sampler};
use sparseinfer::predictor::AlphaSchedule;
use sparseinfer::sparse::engine::EngineBuilder;
use sparseinfer::sparse::request::GenerateRequest;
use sparseinfer::sparse::scheduler::{Scheduler, SchedulerConfig};
use sparseinfer_serve::{Client, Server, ServerConfig};

fn test_model() -> Model {
    let mut cfg = ModelConfig::tiny();
    cfg.hidden_dim = 64;
    cfg.mlp_dim = 160;
    cfg.n_layers = 3;
    cfg.vocab_size = 300;
    WeightGenerator::new(&cfg, 99).build()
}

fn scheduler_config() -> SchedulerConfig {
    SchedulerConfig {
        max_slots: 4,
        block_tokens: 8,
        kv_block_budget: 4096,
        prefix_cache: false, // so a drained pool provably holds 0 blocks
        ..SchedulerConfig::default()
    }
}

/// The requests under test: distinct prompts, lengths and samplers so any
/// cross-request interference in the server shows up as token divergence.
fn workload() -> Vec<(GenerateRequest, String)> {
    (0..8u32)
        .map(|i| {
            let prompt = vec![i + 1, (i * 3) % 40 + 2, i + 11];
            let seed = u64::from(i) * 17 + 3;
            let req = GenerateRequest::new(&prompt)
                .max_new(6 + (i as usize % 3))
                .sampler(Sampler::top_k(8, 0.8, seed));
            let body = format!(
                r#"{{"prompt":[{},{},{}],"max_new":{},"top_k":8,"temperature":0.8,"seed":{}}}"#,
                prompt[0],
                prompt[1],
                prompt[2],
                6 + (i as usize % 3),
                seed,
            );
            (req, body)
        })
        .collect()
}

#[test]
fn concurrent_http_clients_match_direct_scheduler_runs_across_slot_threads() {
    let model = test_model();
    let workload = workload();

    // Reference tokens: each request run alone through the library with
    // the engine the server's factory will build.
    let expected: Vec<Vec<u32>> = workload
        .iter()
        .map(|(req, _)| {
            let mut scheduler = Scheduler::new(scheduler_config());
            let engine = EngineBuilder::new(&model)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap();
            scheduler.submit(engine, req).unwrap();
            scheduler.run().pop().unwrap().tokens
        })
        .collect();

    for slot_threads in [1, 2, 4] {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: scheduler_config(),
            slot_threads,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port");
        let handle = server.handle();
        let addr = handle.addr();

        let mut results: Vec<Option<Vec<u32>>> = vec![None; workload.len()];
        let mut final_stats = None;
        std::thread::scope(|scope| {
            let final_stats = &mut final_stats;
            let server_thread = scope.spawn(|| {
                // The factory serves the paper's training-free sparse
                // engine for every request.
                server.serve(&|_req| {
                    EngineBuilder::new(&model)
                        .signbit(AlphaSchedule::uniform(1.0))
                        .build()
                })
            });
            // All clients concurrently, one thread each.
            std::thread::scope(|clients| {
                for (slot, (_, body)) in results.iter_mut().zip(&workload) {
                    clients.spawn(move || {
                        let (tokens, finish) = Client::connect(addr)
                            .expect("connect")
                            .post_streaming("/v1/generate", body)
                            .expect("admitted")
                            .collect_generation()
                            .expect("complete stream");
                        assert_eq!(
                            finish.get("finish").and_then(Json::as_str),
                            Some("max_tokens"),
                        );
                        *slot = Some(tokens);
                    });
                }
            });
            handle.shutdown();
            *final_stats = Some(server_thread.join().expect("server thread"));
        });

        let tokens: Vec<Vec<u32>> = results.into_iter().map(Option::unwrap).collect();
        assert_eq!(
            tokens, expected,
            "{slot_threads} slot threads: tokens over HTTP differ from library runs"
        );
        let final_stats = final_stats.unwrap();
        assert_eq!(final_stats.completed, workload.len());
        assert_eq!(
            final_stats.scheduler.kv_blocks_in_use, 0,
            "{slot_threads} slot threads: pool must drain to zero"
        );
    }
}

#[test]
fn mid_stream_disconnect_frees_the_slot_and_drains_the_pool() {
    let model = test_model();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: scheduler_config(),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let handle = server.handle();
    let addr = handle.addr();

    let mut final_stats = None;
    std::thread::scope(|scope| {
        let final_stats = &mut final_stats;
        let server_thread = scope.spawn(|| {
            server.serve(&|_req| {
                EngineBuilder::new(&model)
                    .signbit(AlphaSchedule::uniform(1.0))
                    .build()
            })
        });

        // Start a long stream, take one token, vanish.
        let mut stream = Client::connect(addr)
            .expect("connect")
            .post_streaming("/v1/generate", r#"{"prompt":[1,2,3],"max_new":10000}"#)
            .expect("admitted");
        let first = stream.next_event().expect("stream alive").expect("token");
        assert!(first.get("token").is_some());
        stream.abandon();

        // The server must notice the dead socket, cancel the request and
        // free its slot + KV blocks — well before the 10000-token budget.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = handle.stats();
            if stats.scheduler.active_slots == 0
                && stats.completed == 1
                && stats.scheduler.kv_blocks_in_use == 0
            {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "disconnected request never reclaimed: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        handle.shutdown();
        *final_stats = Some(server_thread.join().expect("server thread"));
    });
    assert_eq!(final_stats.unwrap().scheduler.kv_blocks_in_use, 0);
}
