//! Quickstart: build a ReLU-fied model, construct engines through the
//! unified builder, and serve requests — single, streaming, and batched.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparseinfer::model::{generator::WeightGenerator, ByteTokenizer, ModelConfig, Sampler};
use sparseinfer::predictor::AlphaSchedule;
use sparseinfer::sparse::engine::EngineBuilder;
use sparseinfer::sparse::request::{generate, generate_streaming, GenerateRequest};
use sparseinfer::sparse::scheduler::{Scheduler, SchedulerConfig};

fn main() {
    // 1. A ReLU-fied gated-MLP decoder with ~92% activation sparsity,
    //    statistically calibrated to the distributions the paper observes.
    let mut config = ModelConfig::sim_7b();
    config.vocab_size = 512;
    let model = WeightGenerator::new(&config, 7).build();
    println!(
        "model: {} ({} layers, d={}, k={})",
        config.name, config.n_layers, config.hidden_dim, config.mlp_dim
    );

    // 2. Tokenize a prompt.
    let tokenizer = ByteTokenizer::new();
    let prompt = tokenizer.encode("Q: Ada has 3 apples, buys 4. How many? A:");
    let eos = sparseinfer::model::tokenizer::EOS;
    let req = GenerateRequest::new(&prompt).max_new(16).stop_at(eos);

    // 3. Dense baseline (the llama.cpp role): a builder with no predictor.
    let mut dense = EngineBuilder::new(&model).build().expect("dense engine");
    let dense_out = generate(dense.as_mut(), &req).expect("non-empty prompt");
    println!(
        "\ndense continuation:  {:?}",
        tokenizer.decode(&dense_out.tokens)
    );
    println!("dense MLP+attn MACs: {}", dense.ops().macs);

    // 4. SparseInfer: pack the gate sign bits once, then predict per token
    //    with XOR + popcount. alpha > 1 on the early layers compensates
    //    their lower prediction precision.
    let mut engine = EngineBuilder::new(&model)
        .signbit(AlphaSchedule::early_layers(1.1, 16))
        .build()
        .expect("predictor covers every layer");

    // Streaming: tokens arrive through the callback as they are sampled.
    let mut streamed = Vec::new();
    let sparse_out = generate_streaming(engine.as_mut(), &req, |ev| {
        // A real frontend would flush each token to the client here.
        streamed.push(ev.token);
    })
    .expect("non-empty prompt");
    assert_eq!(streamed, sparse_out.tokens);
    println!(
        "sparse continuation: {:?} (streamed token by token)",
        tokenizer.decode(&streamed)
    );

    // 5. What sparsity bought us.
    let ops = engine.ops();
    println!(
        "\nsparse MACs:     {} ({:.1}% of dense)",
        ops.macs,
        100.0 * ops.macs as f64 / dense.ops().macs as f64
    );
    println!(
        "rows skipped:    {} of {}",
        ops.rows_skipped,
        ops.rows_skipped + ops.rows_computed
    );
    println!("predictor cost:  {} xor+popc operations", ops.xor_popc);
    let eff = engine.stats().expect("sparse stats").mean_effective();
    println!(
        "mean effective sparsity: {:.3}",
        eff.iter().sum::<f64>() / eff.len() as f64
    );

    // 6. Serving: four requests — two dense, two sparse, one of them
    //    temperature-sampled — through the continuous-batching scheduler.
    //    Admission control caps concurrency at two slots, so two requests
    //    queue until earlier ones retire and release their paged KV
    //    blocks; each request's tokens are bit-identical to running it
    //    alone. (Requests can also `submit` mid-run and cancel through
    //    their handle — see examples/ondevice_assistant.rs.)
    let mut scheduler = Scheduler::new(SchedulerConfig {
        max_slots: 2,
        block_tokens: 16,
        kv_block_budget: 1024,
        ..SchedulerConfig::default()
    });
    let prompts = [
        "Q: 1 + 1? A:",
        "Q: name a prime. A:",
        "Q: 9 - 4? A:",
        "Q: color of the sky? A:",
    ];
    for (i, text) in prompts.iter().enumerate() {
        let engine = if i % 2 == 0 {
            EngineBuilder::new(&model).build().expect("dense engine")
        } else {
            EngineBuilder::new(&model)
                .signbit(AlphaSchedule::early_layers(1.1, 16))
                .build()
                .expect("sparse engine")
        };
        let mut r = GenerateRequest::new(&tokenizer.encode(text))
            .max_new(8)
            .stop_at(eos);
        if i == 3 {
            r = r.sampler(Sampler::top_k(8, 0.8, 42));
        }
        scheduler.submit(engine, &r).expect("non-empty prompt");
    }
    println!(
        "\nscheduled decode of {} requests over 2 slots:",
        prompts.len()
    );
    for out in scheduler.run() {
        println!(
            "  [{}] {:<18} {:?}  ({} MACs)",
            out.id,
            out.engine,
            tokenizer.decode(&out.tokens),
            out.ops.macs
        );
    }
}
