//! Quickstart: build a ReLU-fied model, attach the training-free sign-bit
//! predictor, and decode with sparsity exploitation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparseinfer::model::{generator::WeightGenerator, ByteTokenizer, ModelConfig};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor};
use sparseinfer::sparse::engine::{DenseEngine, EngineOptions, SparseEngine};

fn main() {
    // 1. A ReLU-fied gated-MLP decoder with ~92% activation sparsity,
    //    statistically calibrated to the distributions the paper observes.
    let mut config = ModelConfig::sim_7b();
    config.vocab_size = 512;
    let model = WeightGenerator::new(&config, 7).build();
    println!("model: {} ({} layers, d={}, k={})", config.name, config.n_layers, config.hidden_dim, config.mlp_dim);

    // 2. Tokenize a prompt.
    let tokenizer = ByteTokenizer::new();
    let prompt = tokenizer.encode("Q: Ada has 3 apples, buys 4. How many? A:");

    // 3. Dense baseline (the llama.cpp role).
    let mut dense = DenseEngine::new(&model);
    let dense_out = dense.generate_greedy(&prompt, 16, sparseinfer::model::tokenizer::EOS);
    println!("\ndense continuation:  {:?}", tokenizer.decode(&dense_out));
    println!("dense MLP+attn MACs: {}", dense.ops().macs);

    // 4. SparseInfer: pack the gate sign bits once, then predict per token
    //    with XOR + popcount. alpha = 1.02 on the early layers compensates
    //    their lower prediction precision.
    let predictor = SignBitPredictor::from_model(&model, AlphaSchedule::early_layers(1.1, 16));
    println!("\npredictor memory: {} KiB of packed sign bits", predictor.memory_bytes() / 1024);

    let mut engine = SparseEngine::new(&model, predictor, EngineOptions::sparseinfer());
    let sparse_out = engine.generate_greedy(&prompt, 16, sparseinfer::model::tokenizer::EOS);
    println!("sparse continuation: {:?}", tokenizer.decode(&sparse_out));

    // 5. What sparsity bought us.
    let ops = engine.ops();
    println!("\nsparse MACs:     {} ({:.1}% of dense)", ops.macs, 100.0 * ops.macs as f64 / dense.ops().macs as f64);
    println!("rows skipped:    {} of {}", ops.rows_skipped, ops.rows_skipped + ops.rows_computed);
    println!("predictor cost:  {} xor+popc operations", ops.xor_popc);
    let eff = engine.stats().mean_effective();
    println!(
        "mean effective sparsity: {:.3}",
        eff.iter().sum::<f64>() / eff.len() as f64
    );
}
