//! The paper's portability claim (§IV-A): the sign-bit predictor works
//! unchanged across storage formats — FP32, FP16 and INT8 — because only
//! the MSB is consulted; a trained predictor must be retrained per format.
//!
//! This example packs sign bits from all three representations of the same
//! gate weights and shows the resulting skip masks are (near-)identical.
//!
//! ```text
//! cargo run --release --example quantization_robustness
//! ```

use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SparsityPredictor};
use sparseinfer::tensor::f16::quantize_slice;
use sparseinfer::tensor::sign::PackedSignMatrix;
use sparseinfer::tensor::{Matrix, Prng, QuantizedMatrix, Vector};

fn main() {
    let mut config = ModelConfig::tiny();
    config.hidden_dim = 128;
    config.mlp_dim = 384;
    config.n_heads = 4;
    let model = WeightGenerator::new(&config, 99).build();
    let schedule = AlphaSchedule::uniform(1.0);

    // FP32 signs (the reference).
    let mut fp32 = SignBitPredictor::from_model(&model, schedule.clone());

    // FP16 signs: convert weights to half precision, pack MSBs.
    let fp16_layers: Vec<PackedSignMatrix> = model
        .layers()
        .iter()
        .map(|l| {
            let w = l.mlp().w_gate();
            let halves = quantize_slice(w.as_slice());
            let as_f32 = Matrix::from_vec(
                w.rows(),
                w.cols(),
                halves.iter().map(|h| h.to_f32()).collect(),
            )
            .expect("same shape");
            PackedSignMatrix::pack(&as_f32)
        })
        .collect();
    let mut fp16 = SignBitPredictor::from_packed(fp16_layers, schedule.clone());

    // INT8 signs: symmetric per-row quantization, pack MSBs of the int8s.
    let int8_layers: Vec<PackedSignMatrix> = model
        .layers()
        .iter()
        .map(|l| QuantizedMatrix::quantize(l.mlp().w_gate()).packed_signs())
        .collect();
    let mut int8 = SignBitPredictor::from_packed(int8_layers, schedule);

    let mut rng = Prng::seed(5);
    let mut fp16_agree = 0usize;
    let mut int8_agree = 0usize;
    let mut total = 0usize;
    for layer in 0..config.n_layers {
        for _ in 0..8 {
            let x = Vector::from_fn(config.hidden_dim, |_| rng.normal(0.4, 1.0) as f32);
            let m32 = fp32.predict(layer, &x);
            let m16 = fp16.predict(layer, &x);
            let m8 = int8.predict(layer, &x);
            for r in 0..config.mlp_dim {
                total += 1;
                if m32.is_skipped(r) == m16.is_skipped(r) {
                    fp16_agree += 1;
                }
                if m32.is_skipped(r) == m8.is_skipped(r) {
                    int8_agree += 1;
                }
            }
        }
    }

    println!("skip-mask agreement with the FP32 reference over {total} decisions:");
    println!("  FP16: {:.4}", fp16_agree as f64 / total as f64);
    println!(
        "  INT8: {:.4}  (int8 zeros pack as 'positive'; only sub-quantum weights differ)",
        int8_agree as f64 / total as f64
    );
    println!(
        "\nNo retraining, no recalibration — the predictor consumed each format's MSBs directly."
    );

    assert!(
        fp16_agree == total,
        "FP16 conversion preserves every sign bit"
    );
    assert!(int8_agree as f64 / total as f64 > 0.99);
}
