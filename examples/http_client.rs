//! HTTP streaming consumer: boot the serving frontend in-process on an
//! ephemeral loopback port, stream a generation over real sockets token
//! by token, inspect `/stats`, and shut the server down gracefully.
//!
//! ```text
//! cargo run --release --example http_client
//! ```
//!
//! The same client code works against a standalone server started with
//! `cargo run --release -p sparseinfer-serve -- --addr 127.0.0.1:8765` —
//! point [`Client::connect`] at that address instead.

use sparseinfer::json::Json;
use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
use sparseinfer::predictor::AlphaSchedule;
use sparseinfer::sparse::engine::EngineBuilder;
use sparseinfer_serve::{Client, Server, ServerConfig};

fn main() {
    // 1. A synthetic ReLU-fied model, served by the sign-bit engine.
    let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();

    // 2. Bind before serving: the handle carries the ephemeral port and
    //    the shutdown switch; `serve` itself blocks, so it gets a thread.
    let server = Server::bind(ServerConfig::default()).expect("bind loopback");
    let handle = server.handle();
    let addr = handle.addr();
    println!("serving on http://{addr}");

    std::thread::scope(|scope| {
        let server_thread = scope.spawn(|| {
            server.serve(&|_req| {
                EngineBuilder::new(&model)
                    .signbit(AlphaSchedule::uniform(1.0))
                    .build()
            })
        });

        // 3. Health check.
        let mut probe = Client::connect(addr).expect("connect");
        let health = probe.get("/healthz").expect("GET /healthz");
        println!("healthz: {} {}", health.status, health.text());

        // 4. Stream a generation. Each SSE event arrives the moment its
        //    token is decoded — this loop prints them as they land.
        let body = r#"{"prompt":[3,1,4,1,5],"max_new":12,"top_k":8,"temperature":0.7,"seed":9}"#;
        println!("POST /v1/generate {body}");
        let mut stream = Client::connect(addr)
            .expect("connect")
            .post_streaming("/v1/generate", body)
            .expect("admitted");
        while let Some(event) = stream.next_event().expect("stream") {
            if let Some(reason) = event.get("finish").and_then(Json::as_str) {
                println!(
                    "finished: {reason} ({} tokens, engine {})",
                    event.get("tokens").and_then(Json::as_u64).unwrap_or(0),
                    event.get("engine").and_then(Json::as_str).unwrap_or("?"),
                );
                break;
            }
            println!(
                "  token[{}] = {}",
                event.get("index").and_then(Json::as_u64).unwrap_or(0),
                event.get("token").and_then(Json::as_u64).unwrap_or(0),
            );
        }

        // 5. Server-side accounting.
        let stats = probe.get("/stats").expect("GET /stats");
        let doc = stats.json().expect("stats JSON");
        let sched = doc.get("scheduler").expect("scheduler section");
        println!(
            "stats: {} submitted, {} completed, {} KV bytes in use",
            sched.get("submitted").and_then(Json::as_u64).unwrap_or(0),
            sched.get("completed").and_then(Json::as_u64).unwrap_or(0),
            doc.get("kv")
                .and_then(|kv| kv.get("in_use_bytes"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
        );

        // 6. Graceful shutdown: drains in-flight work, joins all threads.
        handle.shutdown();
        let final_stats = server_thread.join().expect("server thread");
        println!(
            "shutdown: {} requests served, {} KV blocks in use after drain",
            final_stats.completed, final_stats.scheduler.kv_blocks_in_use
        );
    });
}
