//! On-device assistant scenario: the workload the paper's introduction
//! motivates — autoregressive decoding on a memory-bandwidth-starved edge
//! SoC (Jetson Orin AGX), where every skipped weight row is DRAM traffic
//! saved.
//!
//! Decodes a stream of user queries with the dense engine, PowerInfer-style
//! trained prediction, and SparseInfer — each submitted through the
//! continuous-batching [`Scheduler`] over a paged KV cache — and reports
//! measured work plus projected device latency/energy proxies for each.
//! The final section demonstrates the serving behaviours an on-device
//! assistant needs: a query **joining mid-decode** while another is
//! streaming, and a **mid-stream cancellation** (the user taps "stop").
//!
//! ```text
//! cargo run --release --example ondevice_assistant
//! ```

use sparseinfer::eval::TaskSuite;
use sparseinfer::gpu_sim::latency::{
    dense_token_latency, powerinfer_token_latency, sparseinfer_token_latency, MlpStepSparsity,
    SparseVariant, DEFAULT_CTX,
};
use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::{generator::WeightGenerator, MlpTrace, ModelConfig};
use sparseinfer::predictor::dejavu::{TrainConfig, Trainer};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor};
use sparseinfer::sparse::engine::{EngineBuilder, EngineOptions};
use sparseinfer::sparse::ops::OpCounter;
use sparseinfer::sparse::request::{FinishReason, GenerateRequest};
use sparseinfer::sparse::scheduler::{Scheduler, SchedulerConfig};
use sparseinfer::sparse::SparsityStats;

/// Admission knobs an edge SoC would run with: a couple of concurrent
/// decodes, paged KV at a 16-token granularity, and a hard block budget
/// standing in for the device's KV memory ceiling.
fn edge_config() -> SchedulerConfig {
    SchedulerConfig {
        max_slots: 2,
        block_tokens: 16,
        kv_block_budget: 4096,
        ..SchedulerConfig::default()
    }
}

/// Serves every query through one continuous-batching scheduler — one
/// engine instance per request so per-request accounting stays isolated —
/// and returns the op counters and per-layer sparsity merged over the
/// whole stream.
fn serve_stream<'m>(
    queries: &TaskSuite,
    max_new: usize,
    eos: u32,
    make_engine: impl Fn() -> EngineBuilder<'m>,
) -> (OpCounter, Option<SparsityStats>) {
    let mut scheduler = Scheduler::new(edge_config());
    for q in &queries.tasks {
        let engine = make_engine()
            .build()
            .expect("engine configuration is valid");
        scheduler
            .submit(
                engine,
                &GenerateRequest::new(&q.tokens)
                    .max_new(max_new)
                    .stop_at(eos),
            )
            .expect("non-empty prompt");
    }
    let mut ops = OpCounter::default();
    let mut stats: Option<SparsityStats> = None;
    for o in scheduler.run() {
        ops.merge(&o.ops);
        if let Some(s) = &o.stats {
            stats.get_or_insert_with(SparsityStats::default).merge(s);
        }
    }
    (ops, stats)
}

fn main() {
    let mut config = ModelConfig::sim_7b();
    config.vocab_size = 512;
    let model = WeightGenerator::new(&config, 21).build();
    let paper_cfg = ModelConfig::prosparse_7b_paper();
    let spec = GpuSpec::jetson_orin_agx_64gb();

    let queries = TaskSuite::gsm8k_syn(4, 77);
    let max_new = 12;
    let eos = sparseinfer::model::tokenizer::EOS;

    // --- Dense (llama.cpp role) ---
    let (dense_ops, _) = serve_stream(&queries, max_new, eos, || EngineBuilder::new(&model));

    // --- PowerInfer role: trained DejaVu predictor (trained once, cloned
    // into each request's engine) ---
    let trace = MlpTrace::capture(&model, &(1..=10).collect::<Vec<u32>>(), 6);
    let dejavu = Trainer::new(TrainConfig {
        rank: 24,
        epochs: 8,
        ..TrainConfig::default()
    })
    .train(&model, &trace);
    let (pi_ops, pi_stats) = serve_stream(&queries, max_new, eos, || {
        EngineBuilder::new(&model)
            .dejavu(dejavu.clone())
            .options(EngineOptions::base())
    });

    // --- SparseInfer (sign bits packed once — the load-time step — then
    // cloned into each request's engine) ---
    let signbit = SignBitPredictor::from_model(&model, AlphaSchedule::early_layers(1.1, 16));
    let (si_ops, si_stats) = serve_stream(&queries, max_new, eos, || {
        EngineBuilder::new(&model).predictor(Box::new(signbit.clone()))
    });

    println!(
        "on-device assistant stream: {} queries x {max_new} tokens (continuous scheduler)\n",
        queries.len()
    );
    println!(
        "{:<14} {:>14} {:>16} {:>14}",
        "engine", "MACs", "weight bytes", "rows skipped"
    );
    for (name, ops) in [
        ("dense", &dense_ops),
        ("powerinfer", &pi_ops),
        ("sparseinfer", &si_ops),
    ] {
        println!(
            "{name:<14} {:>14} {:>16} {:>14}",
            ops.macs, ops.weight_bytes_loaded, ops.rows_skipped
        );
    }

    // Projected device latency at paper dimensions from measured sparsity.
    let si_stats = si_stats.expect("sparse engine reports stats");
    let si_layers: Vec<MlpStepSparsity> = si_stats
        .mean_predicted()
        .iter()
        .zip(&si_stats.mean_effective())
        .map(|(p, e)| MlpStepSparsity::with_actual(*p, *e))
        .collect();
    let pi_stats = pi_stats.expect("sparse engine reports stats");
    let pi_layers: Vec<MlpStepSparsity> = pi_stats
        .mean_predicted()
        .iter()
        .map(|p| MlpStepSparsity::uniform(*p))
        .collect();

    let t_dense = dense_token_latency(&spec, &paper_cfg);
    let t_pi = powerinfer_token_latency(&spec, &paper_cfg, &pi_layers, 1024, DEFAULT_CTX);
    let t_si = sparseinfer_token_latency(
        &spec,
        &paper_cfg,
        &si_layers,
        SparseVariant::fused(),
        DEFAULT_CTX,
    );

    println!(
        "\nprojected per-token latency on {} ({} dims):",
        spec.name, paper_cfg.name
    );
    println!("  dense:       {:>7.1} ms", t_dense.total_ms());
    println!(
        "  powerinfer:  {:>7.1} ms  ({:.2}x)",
        t_pi.total_ms(),
        t_dense.total_us() / t_pi.total_us()
    );
    println!(
        "  sparseinfer: {:>7.1} ms  ({:.2}x, {:.2}x over powerinfer)",
        t_si.total_ms(),
        t_dense.total_us() / t_si.total_us(),
        t_pi.total_us() / t_si.total_us()
    );

    // Energy proxy: DRAM traffic dominates edge-SoC decode energy.
    println!(
        "\nDRAM-traffic energy proxy (weight bytes, sparse/dense): {:.3}",
        si_ops.weight_bytes_loaded as f64 / dense_ops.weight_bytes_loaded as f64
    );

    // --- Live serving: a request joins while another is decoding, and a
    // third is cancelled mid-stream (the user taps "stop"). Tokens stream
    // tick by tick; paged KV blocks flow back to the pool the moment a
    // request retires. ---
    println!("\nlive serving demo (max_slots=2, paged KV):");
    let mut scheduler = Scheduler::new(edge_config());
    let assistant_request = |prompt: &[u32], max_new: usize| {
        (
            EngineBuilder::new(&model)
                .predictor(Box::new(signbit.clone()))
                .build()
                .expect("engine configuration is valid"),
            GenerateRequest::new(prompt).max_new(max_new).stop_at(eos),
        )
    };
    let (engine, req) = assistant_request(&queries.tasks[0].tokens, 24);
    let first = scheduler.submit(engine, &req).expect("non-empty prompt");
    let (engine, req) = assistant_request(&queries.tasks[1].tokens, 24);
    let stopped = scheduler.submit(engine, &req).expect("non-empty prompt");
    let mut late = None;
    let mut streamed = [0usize; 3];
    let mut tick = 0usize;
    loop {
        scheduler.tick(|ev| streamed[ev.request] += 1);
        tick += 1;
        if tick == 6 && late.is_none() {
            // A new query arrives while the first two are mid-decode; it
            // queues and is admitted as soon as a slot retires.
            let (engine, req) = assistant_request(&queries.tasks[2].tokens, 8);
            let handle = scheduler.submit(engine, &req).expect("non-empty prompt");
            println!(
                "  tick {tick:>2}: request {} joins mid-run ({} live, {} KV blocks in use)",
                handle.id(),
                scheduler.active_slots(),
                scheduler.kv_pool().blocks_in_use(),
            );
            late = Some(handle);
        }
        if streamed[stopped.id()] >= 5 && !stopped.is_cancelled() {
            stopped.cancel();
            println!(
                "  tick {tick:>2}: request {} cancelled mid-stream after {} tokens",
                stopped.id(),
                streamed[stopped.id()],
            );
        }
        // Re-read after this tick's submissions so the late joiner is
        // never stranded by a count captured before it arrived.
        if scheduler.unfinished_requests() == 0 && (late.is_some() || tick >= 6) {
            break;
        }
    }
    for out in scheduler.take_finished() {
        let role = match out.id {
            i if i == first.id() => "first",
            i if i == stopped.id() => "stopped",
            i if late.as_ref().is_some_and(|h| h.id() == i) => "late-join",
            _ => "?",
        };
        println!(
            "  [{role:<9}] {:>2} tokens, finish {:?}",
            out.tokens.len(),
            out.finish
        );
        if out.id == stopped.id() && stopped.is_cancelled() {
            assert_eq!(out.finish, FinishReason::Cancelled);
        }
    }
    println!(
        "  drained: {} KV blocks in use ({} retained warm by the prefix \
         cache), {} recycled in the pool",
        scheduler.kv_pool().blocks_in_use(),
        scheduler.prefix_stats().retained_blocks,
        scheduler.kv_pool().blocks_free(),
    );

    // --- Prefix caching: an assistant prepends the same system prompt to
    // every query. With `prefix_cache` on (the default), the first request
    // publishes its prompt's full KV blocks; every later request attaches
    // them — prefill work and KV memory become O(unique tokens), and the
    // decoded tokens are bit-identical to cold decode. ---
    println!("\nprefix caching demo (shared 48-token system prompt):");
    let system_prompt: Vec<u32> = (0..48).map(|i| (i * 11) % 500 + 1).collect();
    let mut scheduler = Scheduler::new(edge_config());
    for (i, q) in queries.tasks.iter().enumerate() {
        let mut prompt = system_prompt.clone();
        prompt.extend_from_slice(&q.tokens);
        let engine = EngineBuilder::new(&model)
            .predictor(Box::new(signbit.clone()))
            .build()
            .expect("engine configuration is valid");
        scheduler
            .submit(
                engine,
                &GenerateRequest::new(&prompt).max_new(8).stop_at(eos),
            )
            .unwrap_or_else(|e| panic!("query {i}: {e}"));
    }
    for out in scheduler.run() {
        println!(
            "  request {}: {:>2} tokens decoded, {:>2} prefill tokens served from cache",
            out.id,
            out.tokens.len(),
            out.prefill_skipped_tokens,
        );
    }
}
