//! On-device assistant scenario: the workload the paper's introduction
//! motivates — autoregressive decoding on a memory-bandwidth-starved edge
//! SoC (Jetson Orin AGX), where every skipped weight row is DRAM traffic
//! saved.
//!
//! Decodes a batch of user queries with the dense engine, PowerInfer-style
//! trained prediction, and SparseInfer — each through the unified
//! [`EngineBuilder`] and the round-robin [`Batch`] scheduler — and reports
//! measured work plus projected device latency/energy proxies for each.
//!
//! ```text
//! cargo run --release --example ondevice_assistant
//! ```

use sparseinfer::eval::TaskSuite;
use sparseinfer::gpu_sim::latency::{
    dense_token_latency, powerinfer_token_latency, sparseinfer_token_latency, MlpStepSparsity,
    SparseVariant, DEFAULT_CTX,
};
use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::{generator::WeightGenerator, MlpTrace, ModelConfig};
use sparseinfer::predictor::dejavu::{TrainConfig, Trainer};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor};
use sparseinfer::sparse::batch::Batch;
use sparseinfer::sparse::engine::{EngineBuilder, EngineOptions};
use sparseinfer::sparse::ops::OpCounter;
use sparseinfer::sparse::request::GenerateRequest;
use sparseinfer::sparse::SparsityStats;

/// Decodes every query through one batch scheduler, one engine instance per
/// request (so per-request accounting stays isolated), and returns the op
/// counters and per-layer sparsity merged over the whole batch.
fn serve_batch<'m>(
    queries: &TaskSuite,
    max_new: usize,
    eos: u32,
    make_engine: impl Fn() -> EngineBuilder<'m>,
) -> (OpCounter, Option<SparsityStats>) {
    let mut batch = Batch::new();
    for q in &queries.tasks {
        let engine = make_engine()
            .build()
            .expect("engine configuration is valid");
        batch
            .push(
                engine,
                &GenerateRequest::new(&q.tokens)
                    .max_new(max_new)
                    .stop_at(eos),
            )
            .expect("non-empty prompt");
    }
    let mut ops = OpCounter::default();
    let mut stats: Option<SparsityStats> = None;
    for o in batch.run() {
        ops.merge(&o.ops);
        if let Some(s) = &o.stats {
            stats.get_or_insert_with(SparsityStats::default).merge(s);
        }
    }
    (ops, stats)
}

fn main() {
    let mut config = ModelConfig::sim_7b();
    config.vocab_size = 512;
    let model = WeightGenerator::new(&config, 21).build();
    let paper_cfg = ModelConfig::prosparse_7b_paper();
    let spec = GpuSpec::jetson_orin_agx_64gb();

    let queries = TaskSuite::gsm8k_syn(4, 77);
    let max_new = 12;
    let eos = sparseinfer::model::tokenizer::EOS;

    // --- Dense (llama.cpp role) ---
    let (dense_ops, _) = serve_batch(&queries, max_new, eos, || EngineBuilder::new(&model));

    // --- PowerInfer role: trained DejaVu predictor (trained once, cloned
    // into each request's engine) ---
    let trace = MlpTrace::capture(&model, &(1..=10).collect::<Vec<u32>>(), 6);
    let dejavu = Trainer::new(TrainConfig {
        rank: 24,
        epochs: 8,
        ..TrainConfig::default()
    })
    .train(&model, &trace);
    let (pi_ops, pi_stats) = serve_batch(&queries, max_new, eos, || {
        EngineBuilder::new(&model)
            .dejavu(dejavu.clone())
            .options(EngineOptions::base())
    });

    // --- SparseInfer (sign bits packed once — the load-time step — then
    // cloned into each request's engine) ---
    let signbit = SignBitPredictor::from_model(&model, AlphaSchedule::early_layers(1.1, 16));
    let (si_ops, si_stats) = serve_batch(&queries, max_new, eos, || {
        EngineBuilder::new(&model).predictor(Box::new(signbit.clone()))
    });

    println!(
        "on-device assistant batch: {} queries x {max_new} tokens\n",
        queries.len()
    );
    println!(
        "{:<14} {:>14} {:>16} {:>14}",
        "engine", "MACs", "weight bytes", "rows skipped"
    );
    for (name, ops) in [
        ("dense", &dense_ops),
        ("powerinfer", &pi_ops),
        ("sparseinfer", &si_ops),
    ] {
        println!(
            "{name:<14} {:>14} {:>16} {:>14}",
            ops.macs, ops.weight_bytes_loaded, ops.rows_skipped
        );
    }

    // Projected device latency at paper dimensions from measured sparsity.
    let si_stats = si_stats.expect("sparse engine reports stats");
    let si_layers: Vec<MlpStepSparsity> = si_stats
        .mean_predicted()
        .iter()
        .zip(&si_stats.mean_effective())
        .map(|(p, e)| MlpStepSparsity::with_actual(*p, *e))
        .collect();
    let pi_stats = pi_stats.expect("sparse engine reports stats");
    let pi_layers: Vec<MlpStepSparsity> = pi_stats
        .mean_predicted()
        .iter()
        .map(|p| MlpStepSparsity::uniform(*p))
        .collect();

    let t_dense = dense_token_latency(&spec, &paper_cfg);
    let t_pi = powerinfer_token_latency(&spec, &paper_cfg, &pi_layers, 1024, DEFAULT_CTX);
    let t_si = sparseinfer_token_latency(
        &spec,
        &paper_cfg,
        &si_layers,
        SparseVariant::fused(),
        DEFAULT_CTX,
    );

    println!(
        "\nprojected per-token latency on {} ({} dims):",
        spec.name, paper_cfg.name
    );
    println!("  dense:       {:>7.1} ms", t_dense.total_ms());
    println!(
        "  powerinfer:  {:>7.1} ms  ({:.2}x)",
        t_pi.total_ms(),
        t_dense.total_us() / t_pi.total_us()
    );
    println!(
        "  sparseinfer: {:>7.1} ms  ({:.2}x, {:.2}x over powerinfer)",
        t_si.total_ms(),
        t_dense.total_us() / t_si.total_us(),
        t_pi.total_us() / t_si.total_us()
    );

    // Energy proxy: DRAM traffic dominates edge-SoC decode energy.
    println!(
        "\nDRAM-traffic energy proxy (weight bytes, sparse/dense): {:.3}",
        si_ops.weight_bytes_loaded as f64 / dense_ops.weight_bytes_loaded as f64
    );
}
