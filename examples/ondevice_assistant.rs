//! On-device assistant scenario: the workload the paper's introduction
//! motivates — autoregressive decoding on a memory-bandwidth-starved edge
//! SoC (Jetson Orin AGX), where every skipped weight row is DRAM traffic
//! saved.
//!
//! Decodes a batch of user queries with the dense engine, PowerInfer-style
//! trained prediction, and SparseInfer, and reports measured work plus
//! projected device latency/energy proxies for each.
//!
//! ```text
//! cargo run --release --example ondevice_assistant
//! ```

use sparseinfer::eval::TaskSuite;
use sparseinfer::gpu_sim::latency::{
    dense_token_latency, powerinfer_token_latency, sparseinfer_token_latency, MlpStepSparsity,
    SparseVariant, DEFAULT_CTX,
};
use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::{generator::WeightGenerator, MlpTrace, ModelConfig};
use sparseinfer::predictor::dejavu::{TrainConfig, Trainer};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor};
use sparseinfer::sparse::engine::{DenseEngine, EngineOptions, SparseEngine};

fn main() {
    let mut config = ModelConfig::sim_7b();
    config.vocab_size = 512;
    let model = WeightGenerator::new(&config, 21).build();
    let paper_cfg = ModelConfig::prosparse_7b_paper();
    let spec = GpuSpec::jetson_orin_agx_64gb();

    let queries = TaskSuite::gsm8k_syn(4, 77);
    let max_new = 12;
    let eos = sparseinfer::model::tokenizer::EOS;

    // --- Dense (llama.cpp role) ---
    let mut dense = DenseEngine::new(&model);
    for q in &queries.tasks {
        let _ = dense.generate_greedy(&q.tokens, max_new, eos);
    }

    // --- PowerInfer role: trained DejaVu predictor ---
    let trace = MlpTrace::capture(&model, &(1..=10).collect::<Vec<u32>>(), 6);
    let dejavu = Trainer::new(TrainConfig { rank: 24, epochs: 8, ..TrainConfig::default() })
        .train(&model, &trace);
    let mut powerinfer = SparseEngine::new(&model, dejavu, EngineOptions::base());
    for q in &queries.tasks {
        let _ = powerinfer.generate_greedy(&q.tokens, max_new, eos);
    }

    // --- SparseInfer ---
    let predictor = SignBitPredictor::from_model(&model, AlphaSchedule::early_layers(1.1, 16));
    let mut sparseinfer = SparseEngine::new(&model, predictor, EngineOptions::sparseinfer());
    for q in &queries.tasks {
        let _ = sparseinfer.generate_greedy(&q.tokens, max_new, eos);
    }

    println!("on-device assistant batch: {} queries x {max_new} tokens\n", queries.len());
    println!(
        "{:<14} {:>14} {:>16} {:>14}",
        "engine", "MACs", "weight bytes", "rows skipped"
    );
    for (name, ops) in [
        ("dense", dense.ops()),
        ("powerinfer", powerinfer.ops()),
        ("sparseinfer", sparseinfer.ops()),
    ] {
        println!(
            "{name:<14} {:>14} {:>16} {:>14}",
            ops.macs, ops.weight_bytes_loaded, ops.rows_skipped
        );
    }

    // Projected device latency at paper dimensions from measured sparsity.
    let si_layers: Vec<MlpStepSparsity> = sparseinfer
        .stats()
        .mean_predicted()
        .iter()
        .zip(&sparseinfer.stats().mean_effective())
        .map(|(p, e)| MlpStepSparsity::with_actual(*p, *e))
        .collect();
    let pi_layers: Vec<MlpStepSparsity> = powerinfer
        .stats()
        .mean_predicted()
        .iter()
        .map(|p| MlpStepSparsity::uniform(*p))
        .collect();

    let t_dense = dense_token_latency(&spec, &paper_cfg);
    let t_pi = powerinfer_token_latency(&spec, &paper_cfg, &pi_layers, 1024, DEFAULT_CTX);
    let t_si =
        sparseinfer_token_latency(&spec, &paper_cfg, &si_layers, SparseVariant::fused(), DEFAULT_CTX);

    println!("\nprojected per-token latency on {} ({} dims):", spec.name, paper_cfg.name);
    println!("  dense:       {:>7.1} ms", t_dense.total_ms());
    println!(
        "  powerinfer:  {:>7.1} ms  ({:.2}x)",
        t_pi.total_ms(),
        t_dense.total_us() / t_pi.total_us()
    );
    println!(
        "  sparseinfer: {:>7.1} ms  ({:.2}x, {:.2}x over powerinfer)",
        t_si.total_ms(),
        t_dense.total_us() / t_si.total_us(),
        t_pi.total_us() / t_si.total_us()
    );

    // Energy proxy: DRAM traffic dominates edge-SoC decode energy.
    println!(
        "\nDRAM-traffic energy proxy (weight bytes, sparse/dense): {:.3}",
        sparseinfer.ops().weight_bytes_loaded as f64 / dense.ops().weight_bytes_loaded as f64
    );
}
