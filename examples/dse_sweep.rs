//! Design-space exploration with the alpha knob (the paper's §IV-A claim:
//! a training-free, tunable predictor makes (latency, accuracy) DSE cheap).
//!
//! Sweeps alpha and the early-layer depth it applies to, measuring for each
//! configuration: predicted/effective sparsity, teacher-forced accuracy
//! against the dense gold, and projected Jetson Orin AGX per-token latency.
//! Prints the Pareto frontier.
//!
//! The evaluation prompts come from the same seeded [`TraceSpec`] the load
//! harness replays, so the DSE scores the predictor on the workload
//! population a deployment would actually serve (mixed short/long prompts
//! with shared prefixes) rather than a hand-picked task list.
//!
//! ```text
//! cargo run --release --example dse_sweep
//! ```

use sparseinfer::eval::teacher_forced_engine_matches;
use sparseinfer::gpu_sim::latency::{
    dense_token_latency, sparseinfer_token_latency, MlpStepSparsity, SparseVariant, DEFAULT_CTX,
};
use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
use sparseinfer::predictor::AlphaSchedule;
use sparseinfer::sparse::engine::EngineBuilder;
use sparseinfer_trace::TraceSpec;

fn main() {
    let mut config = ModelConfig::sim_7b();
    config.vocab_size = 512;
    let model = WeightGenerator::new(&config, 11).build();
    let paper_cfg = ModelConfig::prosparse_7b_paper();
    let spec = GpuSpec::jetson_orin_agx_64gb();

    // The prompt population: a seeded trace with the serving mix, capped
    // to a handful of requests so the sweep stays quick at sim_7b dims.
    let workload = TraceSpec::steady(33).requests(3).vocab(512).generate();
    println!(
        "evaluating over a seeded trace: {} prompts, {} prompt tokens\n",
        workload.requests.len(),
        workload.prompt_tokens()
    );
    let gold: Vec<Vec<u32>> = workload
        .requests
        .iter()
        .map(|r| model.generate_greedy(&r.prompt, 10, sparseinfer::model::tokenizer::EOS))
        .collect();

    let dense_ms = dense_token_latency(&spec, &paper_cfg).total_ms();
    println!("dense reference: {dense_ms:.1} ms/token\n");
    println!(
        "{:>7} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "alpha", "depth", "pred-spar", "eff-spar", "latency(ms)", "accuracy"
    );

    let mut frontier: Vec<(f64, f64)> = Vec::new(); // (latency, accuracy)
    for alpha in [1.0, 1.05, 1.1, 1.2] {
        for depth in [8usize, 16, 32] {
            let schedule = AlphaSchedule::early_layers(alpha, depth);
            let mut engine = EngineBuilder::new(&model)
                .signbit(schedule)
                .build()
                .expect("signbit predictor covers every layer");

            // Teacher-forced accuracy over the suite.
            let mut matches = 0usize;
            let mut total = 0usize;
            for (request, gold_tokens) in workload.requests.iter().zip(&gold) {
                let m =
                    teacher_forced_engine_matches(engine.as_mut(), &request.prompt, gold_tokens);
                matches += m.iter().filter(|x| **x).count();
                total += m.len();
            }
            let accuracy = matches as f64 / total.max(1) as f64;

            // Measured sparsity → projected device latency at paper dims.
            let stats = engine.stats().expect("sparse engine has stats");
            let predicted = stats.mean_predicted();
            let effective = stats.mean_effective();
            let per_layer: Vec<MlpStepSparsity> = predicted
                .iter()
                .zip(&effective)
                .map(|(p, e)| MlpStepSparsity::with_actual(*p, *e))
                .collect();
            let ms = sparseinfer_token_latency(
                &spec,
                &paper_cfg,
                &per_layer,
                SparseVariant::fused(),
                DEFAULT_CTX,
            )
            .total_ms();

            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            println!(
                "{alpha:>7.2} {depth:>8} {:>10.3} {:>10.3} {ms:>12.1} {accuracy:>10.3}",
                mean(&predicted),
                mean(&effective)
            );
            frontier.push((ms, accuracy));
        }
    }

    // Pareto: keep configs not dominated (faster AND at least as accurate).
    let mut pareto: Vec<(f64, f64)> = Vec::new();
    for &(ms, acc) in &frontier {
        if !frontier
            .iter()
            .any(|&(m2, a2)| (m2 < ms && a2 >= acc) || (m2 <= ms && a2 > acc))
        {
            pareto.push((ms, acc));
        }
    }
    pareto.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    println!("\nPareto frontier (latency ms, accuracy):");
    for (ms, acc) in pareto {
        println!("  {ms:>7.1} ms  {acc:.3}");
    }
    println!("\nEvery point above cost one predictor *configuration change*, not a retraining —");
    println!("the paper's argument for training-free DSE.");
}
